//! The single-forward-pass scheduling engine.
//!
//! Every constraint on a dynamic instruction references only dynamically
//! earlier instructions (producers, earlier branches, earlier path
//! retirements), so each model's execution times are computable in one
//! in-order pass over the trace — the same structure as the original Lam &
//! Wilson simulator. See the crate docs for the model semantics.

use std::collections::BTreeMap;

use dee_core::{ee_depth, StaticTree, TreeParams};

use crate::model::{LatencyModel, Model, SimConfig};
use crate::prepare::{
    InstrClass, PreparedTrace, META_CLASS_SHIFT, META_DST_SHIFT, META_HAS_READ, META_HAS_WRITE,
    META_IS_COND, META_MISPREDICT, META_REG_MASK, META_REG_SLOTS, META_SRC2_SHIFT, META_TAKEN,
};
use crate::stats::SimOutcome;

/// Maximum tree level tracked in the resolve-location histogram.
const LEVEL_HISTOGRAM_CAP: usize = 64;

/// One pending misprediction penalty.
struct Barrier {
    /// Branch path of the mispredicted branch.
    path: u32,
    /// Earliest cycle affected instructions may execute (resolve + 1).
    time: u32,
    /// First dynamic position no longer affected (`u32::MAX` = all later).
    end_pos: u32,
    /// DEE coverage: instructions within this many paths after the branch
    /// are exempt (they executed down the DEE path).
    cov_paths: u32,
}

/// Runs one model over a prepared trace.
///
/// # Example
///
/// ```
/// use dee_ilpsim::{simulate, Model, PreparedTrace, SimConfig};
/// use dee_workloads::{compress, Scale};
///
/// let w = compress::build(Scale::Tiny);
/// let trace = w.capture_trace().expect("runs");
/// let prepared = PreparedTrace::new(&w.program, &trace);
/// let outcome = simulate(&prepared, &SimConfig::new(Model::DeeCdMf, 64));
/// assert!(outcome.speedup() >= 1.0);
/// ```
#[must_use]
pub fn simulate(prepared: &PreparedTrace, config: &SimConfig) -> SimOutcome {
    if config.model == Model::Oracle {
        simulate_oracle(prepared, config)
    } else {
        simulate_constrained(prepared, config)
    }
}

fn latency_of(latency: &LatencyModel, class: InstrClass) -> u32 {
    match class {
        InstrClass::Alu => latency.alu,
        InstrClass::MulDiv => latency.mul_div,
        InstrClass::Mem => latency.mem,
        InstrClass::Branch => latency.branch,
    }
}

/// Per-class latencies as a table indexed by the meta class field, so the
/// hot loops resolve a record's latency with one load.
fn latency_table(latency: &LatencyModel) -> [u32; 4] {
    [latency.alu, latency.mul_div, latency.mem, latency.branch]
}

/// Latency of record `i` with packed meta `m`: the attached memory-system
/// latency when present (for memory records), else the class latency.
#[inline]
fn meta_latency(m: u32, table: &[u32; 4], mem_override: Option<&[u32]>, i: usize) -> u32 {
    if m & (META_HAS_READ | META_HAS_WRITE) != 0 {
        if let Some(mem) = mem_override {
            return mem[i].max(1);
        }
    }
    table[(m >> META_CLASS_SHIFT) as usize & 3]
}

/// Ideal sequential machine time: one instruction at a time, each taking
/// its full latency. O(1) from the prepared per-class counts; only an
/// attached memory-latency vector forces a per-record pass.
fn sequential_cycles(prepared: &PreparedTrace, latency: &LatencyModel) -> u64 {
    if let Some(mem) = prepared.mem_latency.as_deref() {
        let table = latency_table(latency);
        return prepared
            .meta
            .iter()
            .enumerate()
            .map(|(i, &m)| u64::from(meta_latency(m, &table, Some(mem), i)))
            .sum();
    }
    [
        InstrClass::Alu,
        InstrClass::MulDiv,
        InstrClass::Mem,
        InstrClass::Branch,
    ]
    .into_iter()
    .map(|class| prepared.class_counts[class as usize] * u64::from(latency_of(latency, class)))
    .sum()
}

/// Greedy in-order issue under an explicit PE limit: the earliest cycle at
/// or after `earliest` with a free issue slot.
struct PeSchedule {
    cap: u32,
    issued: BTreeMap<u32, u32>,
    floor: u32,
}

impl PeSchedule {
    fn new(cap: u32) -> Self {
        PeSchedule {
            cap,
            issued: BTreeMap::new(),
            floor: 0,
        }
    }

    fn issue_at(&mut self, earliest: u32) -> u32 {
        let mut t = earliest.max(self.floor);
        loop {
            let count = self.issued.entry(t).or_insert(0);
            if *count < self.cap {
                *count += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Drops bookkeeping for cycles no future instruction can use.
    fn prune_below(&mut self, floor: u32) {
        if floor > self.floor {
            self.floor = floor;
            self.issued = self.issued.split_off(&floor);
        }
    }
}

/// The Riseman–Foster experiment (cited in §1.2 as "the classic study"):
/// unlimited resources, minimal data dependences, but only `bypassed`
/// conditional branches may be outstanding — an instruction cannot issue
/// until all but the last `bypassed` preceding branches have resolved.
///
/// `bypassed = 0` serializes on every branch; as `bypassed → ∞` this
/// converges to the oracle (Riseman & Foster's famous 25.65× harmonic-mean
/// result for infinitely many bypassed jumps).
#[must_use]
pub fn riseman_foster(prepared: &PreparedTrace, bypassed: u32) -> SimOutcome {
    let n = prepared.len;
    let mut reg_time = [0u32; META_REG_SLOTS];
    let mut mem_time = vec![0u32; prepared.mem_words];
    let mut reads = prepared.read_addrs.iter();
    let mut writes = prepared.write_addrs.iter();
    // Resolve times of all conditional branches seen so far.
    let mut branch_resolves: Vec<u32> = Vec::new();
    let mut total = 0u32;
    for &m in &prepared.meta {
        let mut ready = reg_time[(m & META_REG_MASK) as usize]
            .max(reg_time[((m >> META_SRC2_SHIFT) & META_REG_MASK) as usize]);
        if m & META_HAS_READ != 0 {
            let addr = *reads.next().expect("read stream matches meta") as usize;
            ready = ready.max(mem_time[addr]);
        }
        // All but the last `bypassed` earlier branches must have resolved.
        let k = branch_resolves.len();
        if k > bypassed as usize {
            ready = ready.max(branch_resolves[k - 1 - bypassed as usize]);
        }
        let exec = ready + 1;
        reg_time[((m >> META_DST_SHIFT) & META_REG_MASK) as usize] = exec;
        if m & META_HAS_WRITE != 0 {
            let addr = *writes.next().expect("write stream matches meta") as usize;
            mem_time[addr] = exec;
        }
        if m & META_IS_COND != 0 {
            branch_resolves.push(exec);
        }
        total = total.max(exec);
    }
    SimOutcome::new(
        Model::Oracle,
        bypassed,
        n as u64,
        n as u64,
        u64::from(total),
        prepared.num_branches(),
        prepared.num_mispredicts(),
        vec![0; LEVEL_HISTOGRAM_CAP],
    )
}

/// Data-flow limit: unit latency, register renaming, memory flow deps,
/// branches impose nothing (EE with unlimited resources).
fn simulate_oracle(prepared: &PreparedTrace, config: &SimConfig) -> SimOutcome {
    let n = prepared.len;
    // Availability times: the last cycle the producer occupies; consumers
    // issue the cycle after.
    let mut reg_time = [0u32; META_REG_SLOTS];
    let mut mem_time = vec![0u32; prepared.mem_words];
    let table = latency_table(&config.latency);
    let mem_override = prepared.mem_latency.as_deref();
    let mut reads = prepared.read_addrs.iter();
    let mut writes = prepared.write_addrs.iter();
    let mut total = 0u32;
    for (i, &m) in prepared.meta.iter().enumerate() {
        let lat = meta_latency(m, &table, mem_override, i);
        let mut ready = reg_time[(m & META_REG_MASK) as usize]
            .max(reg_time[((m >> META_SRC2_SHIFT) & META_REG_MASK) as usize]);
        if m & META_HAS_READ != 0 {
            let addr = *reads.next().expect("read stream matches meta") as usize;
            ready = ready.max(mem_time[addr]);
        }
        let exec = ready + 1;
        let done = exec + lat - 1;
        reg_time[((m >> META_DST_SHIFT) & META_REG_MASK) as usize] = done;
        if m & META_HAS_WRITE != 0 {
            let addr = *writes.next().expect("write stream matches meta") as usize;
            mem_time[addr] = done;
        }
        total = total.max(done);
    }
    SimOutcome::new(
        Model::Oracle,
        0,
        n as u64,
        sequential_cycles(prepared, &config.latency),
        u64::from(total),
        prepared.num_branches(),
        prepared.num_mispredicts(),
        vec![0; LEVEL_HISTOGRAM_CAP],
    )
}

fn simulate_constrained(prepared: &PreparedTrace, config: &SimConfig) -> SimOutcome {
    let n = prepared.len;
    let model = config.model;

    // Window depth in real branch paths, and the DEE coverage shape
    // (l, h): from the §3.1 heuristic, or an explicit ablation override.
    let dee_shape: Option<(u32, u32)> = model.is_dee().then(|| match config.dee_shape {
        Some(shape) => shape,
        None => {
            let tree = StaticTree::build(TreeParams {
                p: config.p.clamp(0.5, 0.9999),
                et: config.et,
            });
            (tree.mainline_len(), tree.h_dee())
        }
    });
    let window: u32 = match model {
        Model::Ee => ee_depth(config.et).max(1),
        Model::Dee | Model::DeeCd | Model::DeeCdMf => dee_shape.expect("built above").0,
        _ => config.et,
    };
    let serialized = !model.is_mf();
    let penalties = model != Model::Ee; // EE covers both sides of every branch
    let mut pe = config.max_pe.map(PeSchedule::new);

    let mut reg_time = [0u32; META_REG_SLOTS];
    let mut mem_time = vec![0u32; prepared.mem_words];
    let table = latency_table(&config.latency);
    let mem_override = prepared.mem_latency.as_deref();
    let mut reads = prepared.read_addrs.iter();
    let mut writes = prepared.write_addrs.iter();
    // Branch-path index of the current record: advances past each
    // conditional branch, reproducing the prepare-time numbering without
    // streaming a separate per-record column.
    let mut path = 0u32;
    let mut retire: Vec<u32> = Vec::with_capacity(prepared.num_paths as usize);
    let mut barriers: Vec<Barrier> = Vec::new();
    let mut global_floor = 0u32;
    let mut prev_branch_exec = 0u32;
    let mut path_max_exec = 0u32;
    let mut total = 0u32;
    let mut histogram = vec![0u64; LEVEL_HISTOGRAM_CAP];
    // Resolve times of the branches still potentially unresolved: only
    // branches within the window can be pending (anything older retired
    // before the current path entered, hence resolved earlier).
    let mut recent_branch_exec: std::collections::VecDeque<u32> =
        std::collections::VecDeque::with_capacity(window as usize + 1);

    for (i, &m) in prepared.meta.iter().enumerate() {
        // Window entry: the tree covers `window` consecutive real paths.
        let entry = if path < window {
            1
        } else {
            retire[(path - window) as usize] + 1
        };

        // Minimal data dependences.
        let mut ready = reg_time[(m & META_REG_MASK) as usize]
            .max(reg_time[((m >> META_SRC2_SHIFT) & META_REG_MASK) as usize]);
        if m & META_HAS_READ != 0 {
            let addr = *reads.next().expect("read stream matches meta") as usize;
            ready = ready.max(mem_time[addr]);
        }
        let lat = meta_latency(m, &table, mem_override, i);
        let mut exec = (ready + 1).max(entry).max(global_floor);

        // Active misprediction barriers.
        if !barriers.is_empty() {
            let mut k = 0;
            while k < barriers.len() {
                let b = &barriers[k];
                if (i as u32) >= b.end_pos {
                    barriers.swap_remove(k);
                    continue;
                }
                if b.end_pos == u32::MAX && path > b.path + b.cov_paths {
                    // Restrictive barrier past its coverage window applies
                    // to everything from here on: fold into the floor.
                    global_floor = global_floor.max(b.time);
                    exec = exec.max(b.time);
                    barriers.swap_remove(k);
                    continue;
                }
                if path > b.path + b.cov_paths {
                    exec = exec.max(b.time);
                }
                k += 1;
            }
        }

        let is_branch = m & META_IS_COND != 0;
        if is_branch && serialized {
            exec = exec.max(prev_branch_exec + 1);
        }

        // Explicit PE limit: greedy in-order issue into the first free
        // slot at or after the earliest feasible cycle.
        if let Some(pe) = pe.as_mut() {
            exec = pe.issue_at(exec);
            if i % 4096 == 0 {
                pe.prune_below(entry);
            }
        }

        // The instruction occupies its unit through `done`; consumers and
        // retirement see the completion time.
        let done = exec + lat - 1;
        reg_time[((m >> META_DST_SHIFT) & META_REG_MASK) as usize] = done;
        if m & META_HAS_WRITE != 0 {
            let addr = *writes.next().expect("write stream matches meta") as usize;
            mem_time[addr] = done;
        }
        path_max_exec = path_max_exec.max(done);
        total = total.max(done);

        if is_branch {
            let resolve = done;
            prev_branch_exec = resolve;
            // This path retires once fully executed, in order.
            let retire_time = retire.last().copied().unwrap_or(0).max(path_max_exec);
            retire.push(retire_time);
            path_max_exec = 0;
            recent_branch_exec.push_back(resolve);
            if recent_branch_exec.len() > window as usize {
                recent_branch_exec.pop_front();
            }

            if penalties && m & META_MISPREDICT != 0 {
                // Tree level at resolution: one plus the number of older
                // branches still unresolved when this one resolves — "as
                // branches resolve at the top of the tree, the tree moves
                // down" (§3.1); the DEE paths hang off the first h pending
                // branches.
                let older_unresolved =
                    recent_branch_exec.iter().filter(|&&e| e > resolve).count() as u32;
                let level = older_unresolved + 1;
                let idx = (level as usize - 1).min(LEVEL_HISTOGRAM_CAP - 1);
                histogram[idx] += 1;

                let cov = dee_shape.map_or(0, |(_, h)| {
                    if level == 0 || level > h {
                        0
                    } else {
                        h - level + 1
                    }
                });

                let end_pos = if model.is_cd() {
                    cd_region_end(prepared, config, i)
                } else {
                    u32::MAX
                };
                barriers.push(Barrier {
                    path,
                    time: resolve + 1,
                    end_pos,
                    cov_paths: cov,
                });
            }
            path += 1;
        }
    }

    SimOutcome::new(
        model,
        config.et,
        n as u64,
        sequential_cycles(prepared, &config.latency),
        u64::from(total),
        prepared.num_branches(),
        prepared.num_mispredicts(),
        histogram,
    )
}

/// First dynamic position no longer control-dependent on the mispredicted
/// branch at `i`, under reduced control dependences.
///
/// If the *predicted* (wrong) direction can re-reach the branch before its
/// reconvergence point, the wrong path crosses an iteration boundary and the
/// operand context of everything younger is invalid: the penalty is
/// restrictive (`u32::MAX`). Otherwise the penalty ends at the first dynamic
/// occurrence of the branch's reconvergence point at the same call depth
/// (scan capped at `max_cd_scan`).
fn cd_region_end(prepared: &PreparedTrace, config: &SimConfig, i: usize) -> u32 {
    let pc = prepared.pcs[i] as usize;
    // Mispredicted: the predicted direction is the opposite of the actual
    // direction packed into the meta word.
    let predicted_taken = prepared.meta[i] & META_TAKEN == 0;
    let loops_back = if predicted_taken {
        prepared.loops_back_taken[pc]
    } else {
        prepared.loops_back_fall[pc]
    };
    if loops_back {
        return u32::MAX;
    }
    let Some(join_pc) = prepared.reconv[pc] else {
        return u32::MAX; // reconverges only at program exit
    };
    let depth = prepared.depths[i];
    let limit = prepared.len.min(i + 1 + config.max_cd_scan as usize);
    for j in i + 1..limit {
        if prepared.pcs[j] == join_pc && prepared.depths[j] == depth {
            return j as u32;
        }
    }
    (i + 1 + config.max_cd_scan as usize).min(u32::MAX as usize) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::{Assembler, Program, Reg};
    use dee_vm::{trace_program, Trace};

    fn prep(program: &Program, trace: &Trace) -> PreparedTrace {
        PreparedTrace::new(program, trace)
    }

    /// A dependence chain: every instruction depends on the previous one.
    fn serial_chain(n: usize) -> (Program, Trace) {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 0);
        for _ in 0..n {
            asm.addi(r1, r1, 1);
        }
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100_000).unwrap();
        (p, t)
    }

    /// Fully independent instructions.
    fn parallel_block(n: usize) -> (Program, Trace) {
        let mut asm = Assembler::new();
        for k in 0..n {
            asm.li(Reg::new(1 + (k % 8) as u8), k as i32);
        }
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100_000).unwrap();
        (p, t)
    }

    #[test]
    fn oracle_on_serial_chain_is_sequential() {
        let (p, t) = serial_chain(50);
        let prepared = prep(&p, &t);
        let out = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        // li + 50 dependent addis -> critical path 51; halt parallel.
        assert_eq!(out.cycles, 51);
        assert!(out.speedup() < 1.1);
    }

    #[test]
    fn oracle_on_parallel_block_is_one_cycle() {
        let (p, t) = parallel_block(64);
        let prepared = prep(&p, &t);
        let out = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        assert_eq!(out.cycles, 1, "no dependences: all in cycle 1");
        assert!(out.speedup() > 60.0);
    }

    #[test]
    fn oracle_respects_memory_flow_dependences() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 7); // cycle 1
        asm.sw(r1, Reg::ZERO, 100); // cycle 2
        asm.lw(r2, Reg::ZERO, 100); // cycle 3 (flow through memory)
        asm.out(r2); // cycle 4
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100).unwrap();
        let prepared = prep(&p, &t);
        let out = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        assert_eq!(out.cycles, 4);
    }

    #[test]
    fn constrained_models_never_beat_oracle() {
        let w = dee_workloads::compress::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        let oracle = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        for model in Model::all_constrained() {
            for et in [8, 32, 256] {
                let out = simulate(&prepared, &SimConfig::new(model, et));
                assert!(
                    out.cycles >= oracle.cycles,
                    "{model} at {et}: {} < oracle {}",
                    out.cycles,
                    oracle.cycles
                );
                assert!(out.speedup() >= 0.9, "{model}: no slowdown vs sequential");
            }
        }
    }

    #[test]
    fn speedups_monotone_in_resources() {
        let w = dee_workloads::xlisp::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        for model in Model::all_constrained() {
            let mut last = 0.0;
            for et in [8, 16, 32, 64, 128, 256] {
                let s = simulate(&prepared, &SimConfig::new(model, et)).speedup();
                assert!(
                    s >= last - 1e-9,
                    "{model}: speedup not monotone at et={et}: {s} < {last}"
                );
                last = s;
            }
        }
    }

    #[test]
    fn dee_equals_sp_when_tree_degenerates() {
        // p = 0.9053, et <= 16: the DEE static tree is a pure SP chain
        // (paper §5.3), so the models must coincide exactly.
        let w = dee_workloads::espresso::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        for et in [8, 16] {
            let sp = simulate(&prepared, &SimConfig::new(Model::Sp, et));
            let dee = simulate(&prepared, &SimConfig::new(Model::Dee, et));
            assert_eq!(sp.cycles, dee.cycles, "et={et}");
        }
    }

    #[test]
    fn dee_beats_sp_with_enough_resources() {
        let w = dee_workloads::xlisp::build(dee_workloads::Scale::Small);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        let p = prepared.accuracy();
        let sp = simulate(&prepared, &SimConfig::new(Model::Sp, 128).with_p(p));
        let dee = simulate(&prepared, &SimConfig::new(Model::Dee, 128).with_p(p));
        assert!(
            dee.cycles < sp.cycles,
            "DEE {} should beat SP {}",
            dee.cycles,
            sp.cycles
        );
    }

    #[test]
    fn cd_mf_ordering_holds() {
        // SP <= SP-CD <= SP-CD-MF (cycles non-increasing), likewise DEE.
        let w = dee_workloads::cc1::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        let cycles = |m: Model| simulate(&prepared, &SimConfig::new(m, 64)).cycles;
        assert!(cycles(Model::SpCd) <= cycles(Model::Sp));
        assert!(cycles(Model::SpCdMf) <= cycles(Model::SpCd));
        assert!(cycles(Model::DeeCd) <= cycles(Model::Dee));
        assert!(cycles(Model::DeeCdMf) <= cycles(Model::DeeCd));
    }

    #[test]
    fn perfect_prediction_removes_all_barriers() {
        // With no mispredicts, SP == SP-CD == SP-CD-MF except for branch
        // serialization (identical across the three), so cycles match.
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        // An always-taken-until-exit loop is almost perfectly predicted by
        // the weakly-taken-initialized counter: only the final exit misses.
        asm.li(r1, 40);
        asm.label("top");
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 10_000).unwrap();
        let prepared = prep(&p, &t);
        assert_eq!(prepared.num_mispredicts(), 1, "only the loop exit misses");
        let sp = simulate(&prepared, &SimConfig::new(Model::Sp, 64));
        let spcd = simulate(&prepared, &SimConfig::new(Model::SpCd, 64));
        // The final-exit mispredict penalizes at most the trailing halt.
        assert!(sp.cycles >= spcd.cycles);
        assert!(sp.cycles - spcd.cycles <= 2);
    }

    #[test]
    fn ee_is_insensitive_to_prediction_but_window_limited() {
        let w = dee_workloads::cc1::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        let ee8 = simulate(&prepared, &SimConfig::new(Model::Ee, 8));
        let ee256 = simulate(&prepared, &SimConfig::new(Model::Ee, 256));
        // Depth 2 at 8 paths vs depth 7 at 256.
        assert!(ee256.speedup() > ee8.speedup());
        // EE's histogram records nothing (no penalties).
        assert!(ee8.resolve_level_histogram.iter().all(|&c| c == 0));
    }

    #[test]
    fn resolve_levels_concentrate_near_tree_top() {
        // §5.3: "most of the resolving is done at the root of the tree" —
        // in our traces MF-model resolutions concentrate in the first few
        // levels (within DEE coverage), and serialized models resolve
        // exactly at the root by construction.
        let w = dee_workloads::eqntott::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        let out = simulate(
            &prepared,
            &SimConfig::new(Model::DeeCdMf, 100).with_p(prepared.accuracy()),
        );
        let total: u64 = out.resolve_level_histogram.iter().sum();
        assert!(total > 0);
        let top5: u64 = out.resolve_level_histogram.iter().take(5).sum();
        assert!(
            top5 as f64 / total as f64 > 0.6,
            "resolutions should concentrate near the top: {top5}/{total}"
        );

        let serial = simulate(&prepared, &SimConfig::new(Model::Dee, 100));
        assert_eq!(
            serial.root_resolve_fraction(),
            Some(1.0),
            "serialized branches always resolve in order, i.e. at the root"
        );
    }

    #[test]
    fn riseman_foster_interpolates_to_oracle() {
        let w = dee_workloads::espresso::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        let oracle = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        let mut last = 0.0;
        for bypassed in [0u32, 1, 2, 4, 8, 32, 128, 100_000] {
            let out = riseman_foster(&prepared, bypassed);
            assert!(
                out.speedup() >= last - 1e-9,
                "bypassed={bypassed}: {} < {last}",
                out.speedup()
            );
            assert!(out.cycles >= oracle.cycles);
            last = out.speedup();
        }
        // With effectively infinite bypassing the branch constraint is gone.
        let unlimited = riseman_foster(&prepared, u32::MAX);
        assert_eq!(unlimited.cycles, oracle.cycles);
        // With zero bypassing, speedup collapses toward the branch density
        // bound (instructions per branch path).
        let zero = riseman_foster(&prepared, 0);
        assert!(zero.speedup() < t.mean_path_len() + 1.0);
    }

    #[test]
    fn non_unit_latency_stretches_serial_chains() {
        // A chain of dependent multiplies: with 4-cycle multiply the
        // oracle's critical path is ~4x the unit-latency one, and so is
        // the sequential baseline, so the speedup stays ~1.
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 1);
        for _ in 0..20 {
            asm.muli(r1, r1, 3);
        }
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 1000).unwrap();
        let prepared = prep(&p, &t);
        let unit = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        let classic = simulate(
            &prepared,
            &SimConfig::new(Model::Oracle, 0).with_latency(LatencyModel::CLASSIC),
        );
        assert!(
            classic.cycles >= unit.cycles + 3 * 20,
            "{} vs {}",
            classic.cycles,
            unit.cycles
        );
        assert_eq!(classic.sequential_cycles, unit.sequential_cycles + 3 * 20);
        assert!((classic.speedup() - unit.speedup()).abs() < 0.3);
    }

    #[test]
    fn latency_answers_the_papers_open_question() {
        // §5.3: "It is not yet clear what the net effect of assuming
        // non-unit latencies on the DEE-CD-MF model will be." Measure it:
        // IPC must drop, while speedup-vs-sequential is cushioned by the
        // overlap the model exposes.
        let w = dee_workloads::espresso::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        let unit = simulate(&prepared, &SimConfig::new(Model::DeeCdMf, 100));
        let classic = simulate(
            &prepared,
            &SimConfig::new(Model::DeeCdMf, 100).with_latency(LatencyModel::CLASSIC),
        );
        assert!(classic.ipc() < unit.ipc());
        assert!(classic.speedup() > 1.0);
    }

    #[test]
    fn attached_mem_latencies_override_class_latency() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 7); // record 0
        asm.sw(r1, Reg::ZERO, 10); // record 1: store, latency 5
        asm.lw(r2, Reg::ZERO, 10); // record 2: load, latency 9
        asm.out(r2); // record 3
        asm.halt(); // record 4
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100).unwrap();
        let prepared = prep(&p, &t).with_mem_latencies(vec![0, 5, 9, 0, 0]);
        let out = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        // li done at 1; store issues 2, done 6; load issues 7, done 15;
        // out issues 16.
        assert_eq!(out.cycles, 16);
        assert_eq!(out.sequential_cycles, 1 + 5 + 9 + 1 + 1);
    }

    #[test]
    #[should_panic(expected = "invalid memory latencies")]
    fn mem_latencies_length_checked() {
        let (p, t) = serial_chain(3);
        let _ = prep(&p, &t).with_mem_latencies(vec![1]);
    }

    #[test]
    #[should_panic(expected = "invalid memory latencies")]
    fn zero_mem_latency_rejected_for_memory_records() {
        let mut asm = Assembler::new();
        asm.sw(Reg::new(1), Reg::ZERO, 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 10).unwrap();
        let _ = prep(&p, &t).with_mem_latencies(vec![0, 0]);
    }

    #[test]
    fn pe_cap_bounds_issue_rate() {
        let (p, t) = parallel_block(64);
        let prepared = prep(&p, &t);
        let capped = simulate(
            &prepared,
            &SimConfig::new(Model::SpCdMf, 256).with_max_pe(4),
        );
        // 65 instructions at <= 4 per cycle need >= 17 cycles.
        assert!(capped.cycles >= 17, "cycles = {}", capped.cycles);
        assert!(capped.speedup() <= 4.0 + 1e-9);
    }

    #[test]
    fn pe_cap_is_monotone() {
        let w = dee_workloads::eqntott::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let prepared = prep(&w.program, &t);
        let mut last = u64::MAX;
        for cap in [1u32, 2, 4, 16, 64] {
            let out = simulate(
                &prepared,
                &SimConfig::new(Model::DeeCdMf, 100).with_max_pe(cap),
            );
            assert!(out.cycles <= last, "cap {cap}: {} > {last}", out.cycles);
            assert!(out.speedup() <= f64::from(cap) + 1e-9);
            last = out.cycles;
        }
        let unlimited = simulate(&prepared, &SimConfig::new(Model::DeeCdMf, 100));
        assert!(unlimited.cycles <= last);
    }

    #[test]
    fn cycles_bounded_by_trace_length() {
        let w = dee_workloads::compress::build(dee_workloads::Scale::Tiny);
        let t = w.capture_trace().unwrap();
        let n = t.len() as u64;
        let prepared = prep(&w.program, &t);
        for model in Model::all_constrained() {
            let out = simulate(&prepared, &SimConfig::new(model, 16));
            assert!(out.cycles <= n + 2, "{model}: {} > {n}", out.cycles);
        }
    }
}
