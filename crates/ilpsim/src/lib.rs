//! The resource-constrained, trace-driven ILP limit simulator behind every
//! figure of the paper's evaluation (§5).
//!
//! Following §5.1, an "appropriately shaped static tree pattern is
//! superimposed on the dynamic execution trace": code executes only where
//! the tree is; the tree advances one branch path at a time, when its
//! earliest (root) path has fully executed and its exit branch resolved; a
//! branch resolving deeper in the tree frees nothing until everything above
//! it has retired. Branch-path resources `E_T` bound the tree's size; PEs
//! are implicitly (not explicitly) limited; every instruction has unit
//! latency; minimal data dependences are assumed (register flow dependences
//! via renaming, memory flow dependences store→load per word).
//!
//! # The eight models (§5.2)
//!
//! | model      | window (real paths) | mispredict penalty scope  | branches |
//! |------------|---------------------|---------------------------|----------|
//! | `EE`       | `d : 2^(d+1)-2 ≤ E_T` | none (both paths in tree) | parallel |
//! | `SP`       | `E_T`               | all later instructions    | serial   |
//! | `DEE`      | `l` of static tree  | all later, *DEE-covered waived* | serial |
//! | `SP-CD`    | `E_T`               | control-dependent region  | serial   |
//! | `DEE-CD`   | `l`                 | CD region, covered waived | serial   |
//! | `SP-CD-MF` | `E_T`               | control-dependent region  | parallel |
//! | `DEE-CD-MF`| `l`                 | CD region, covered waived | parallel |
//! | `Oracle`   | unlimited           | none                      | parallel |
//!
//! Interpretations (recorded here because the paper inherits its model
//! semantics from Lam & Wilson and from the Levo machine sketch):
//!
//! * **Correctly predicted branches cost nothing** in every speculative
//!   model — speculation removes their control dependences.
//! * **A mispredicted branch** resolving at cycle `t` delays its penalty
//!   scope to `t + 1`. In the restrictive models the scope is every
//!   dynamically later instruction; in the `-CD` models it is the dynamic
//!   control-dependence region — instructions between the branch and its
//!   reconvergence point (the branch's immediate post-dominator, matched at
//!   the same call depth). Code past the join is *not* delayed: the paper's
//!   static instruction window holds it regardless of the branch direction
//!   (§4.1), which is what "reduced control dependencies" buys.
//! * **DEE coverage**: a mispredicted branch resolving at tree level
//!   `k ≤ h_DEE` has a DEE path holding the correct continuation for
//!   `h_DEE − k + 1` branch paths; instructions within that coverage are
//!   exempt from its penalty (they executed in the DEE path). The level is
//!   the branch's distance from the tree root (the oldest unretired path)
//!   at resolution time.
//! * **Serial vs multiple-flow branches**: in non-MF models a conditional
//!   branch may not resolve before the dynamically previous conditional
//!   branch (single flow of control, "branches serialized"); `-MF` models
//!   drop this constraint.
//! * **Window entry**: real-trace path `P` enters the window the cycle
//!   after path `P − W` retires (in-order retirement, tree movement). The
//!   `EE` tree covers both directions at every level, so its window is only
//!   `d` deep but misprediction-penalty-free; `SP`'s chain is `E_T` deep;
//!   `DEE`'s main line is `l = E_T − h(h+1)/2` deep with the DEE region
//!   providing the coverage waivers.
//! * **Indirect jumps and calls** (`jr`/`jal`) are not predicted and carry
//!   no penalty (a return-address stack is assumed); only conditional
//!   branches are speculated, as in the paper.
//!
//! # Example
//!
//! ```
//! use dee_ilpsim::{simulate, Model, PreparedTrace, SimConfig};
//! use dee_workloads::{xlisp, Scale};
//!
//! let w = xlisp::build(Scale::Tiny);
//! let trace = w.capture_trace().expect("runs");
//! let prepared = PreparedTrace::new(&w.program, &trace);
//! let oracle = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
//! let sp = simulate(&prepared, &SimConfig::new(Model::Sp, 32));
//! assert!(oracle.speedup() > sp.speedup());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod model;
mod prepare;
mod stats;

pub use engine::{riseman_foster, simulate};
pub use model::{LatencyModel, Model, SimConfig};
pub use prepare::{PreparedTrace, PreparedTraceBuilder};
pub use stats::{harmonic_mean, SimOutcome};

/// Send/Sync audit (DESIGN.md §8): the sweep pool in `dee-bench` and the
/// `/batch` fan-out in `dee-serve` share one [`PreparedTrace`] per workload
/// across worker threads and move configs/outcomes between them. Every
/// type here is plain owned data with no interior mutability —
/// [`simulate`] takes `&PreparedTrace` and builds all mutable state
/// locally — so these bounds hold structurally; this assertion turns an
/// accidental `Rc`/`RefCell`/raw-pointer regression into a compile error
/// rather than a data race.
const _SEND_SYNC_AUDIT: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedTrace>();
    assert_send_sync::<SimConfig>();
    assert_send_sync::<Model>();
    assert_send_sync::<LatencyModel>();
    assert_send_sync::<SimOutcome>();
};
