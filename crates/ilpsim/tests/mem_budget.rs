//! Peak-allocation regression guard for the streaming prepare pipeline.
//!
//! Run with `cargo test -p dee-ilpsim --features alloc-guard --test
//! mem_budget`. Compiled out entirely without the feature so the counting
//! allocator never taxes the normal test suite.
//!
//! The claim under test: preparing the fig5-small suite through
//! [`PreparedTrace::from_source`] over a live [`CaptureChunks`] producer
//! never materializes the full record vector, so its peak heap growth
//! stays under a fixed byte budget — while the legacy capture-then-prepare
//! path (whole [`Trace`] in memory, then [`PreparedTrace::new`]) blows
//! through the same budget on the larger workloads. Both paths must agree
//! on every simulation-visible quantity, or the budget win is meaningless.
//!
//! The library crate forbids `unsafe`; this integration test is its own
//! crate, and the `GlobalAlloc` wrapper below is the one place in the
//! workspace allowed to need it.
#![cfg(feature = "alloc-guard")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use dee_ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee_predict::TwoBitCounter;
use dee_vm::CaptureChunks;
use dee_workloads::{all_workloads, Scale, Workload};

/// Forwarding allocator that tracks live bytes and the high-water mark.
/// Counts layout sizes, not malloc overhead — a deterministic lower bound
/// that is identical across allocators and platforms.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(bytes: usize) {
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                on_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap growth above the phase's starting live set, at its peak.
fn phase_peak(f: impl FnOnce()) -> usize {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    f();
    PEAK.load(Ordering::Relaxed).saturating_sub(base)
}

/// Budget the streamed path must stay under and the legacy path must
/// exceed, as peak heap growth while preparing one fig5-small workload.
/// Empirically the streamed path peaks around 7.8 MiB (machine memory
/// image plus columnar output plus one chunk buffer) and the legacy path
/// around 14.7 MiB (the ~240 K-record eqntott trace vector alone is
/// ~9.6 MiB before the columns even start), so 10 MiB sits between with
/// ~25-40% margin each way.
const BUDGET_BYTES: usize = 10 * 1024 * 1024;

/// Chunk size for the streamed path: small enough that the in-flight
/// buffer is noise next to the columnar output.
const CHUNK_RECORDS: usize = 4096;

/// Everything `simulate` can observe, for cross-path identity checks.
fn fingerprint(prepared: &PreparedTrace) -> (usize, u32, u64, u64, Vec<i32>, f64, f64) {
    let outcome = simulate(prepared, &SimConfig::new(Model::DeeCdMf, 8));
    (
        prepared.len(),
        prepared.num_paths(),
        prepared.num_branches(),
        prepared.num_mispredicts(),
        prepared.output().to_vec(),
        prepared.accuracy(),
        outcome.speedup(),
    )
}

fn prepare_streamed(w: &Workload) -> PreparedTrace {
    let mut source = CaptureChunks::new(&w.program, &w.initial_memory, w.step_limit)
        .expect("workload image fits");
    let mut predictor = TwoBitCounter::new();
    PreparedTrace::from_source(&w.program, &mut source, CHUNK_RECORDS, &mut predictor)
        .expect("in-process capture cannot fault")
}

fn prepare_legacy(w: &Workload) -> PreparedTrace {
    let trace = w.capture_trace().expect("workload runs to halt");
    PreparedTrace::new(&w.program, &trace)
}

#[test]
fn streamed_prepare_stays_under_budget_while_legacy_exceeds_it() {
    let suite = all_workloads(Scale::Small);
    assert_eq!(suite.len(), 5, "fig5 suite is the paper's five workloads");

    let mut streamed_worst = 0usize;
    let mut legacy_worst = 0usize;
    for w in &suite {
        let mut streamed = None;
        let streamed_peak = phase_peak(|| streamed = Some(prepare_streamed(w)));
        let streamed = streamed.unwrap();
        let streamed_print = fingerprint(&streamed);
        drop(streamed);

        let mut legacy = None;
        let legacy_peak = phase_peak(|| legacy = Some(prepare_legacy(w)));
        let legacy = legacy.unwrap();
        let legacy_print = fingerprint(&legacy);
        drop(legacy);

        eprintln!(
            "mem_budget: {:<10} streamed_peak={:>9} legacy_peak={:>9}",
            w.name, streamed_peak, legacy_peak
        );
        assert_eq!(streamed_print, legacy_print, "{}: paths diverge", w.name);
        assert!(
            streamed_peak <= BUDGET_BYTES,
            "{}: streamed prepare peaked at {streamed_peak} bytes, budget {BUDGET_BYTES}",
            w.name
        );
        streamed_worst = streamed_worst.max(streamed_peak);
        legacy_worst = legacy_worst.max(legacy_peak);
    }

    // The regression tripwire: if the legacy path ever fits the budget,
    // the budget is too loose to catch a streamed-path regression back to
    // whole-trace materialization — tighten it.
    assert!(
        legacy_worst > BUDGET_BYTES,
        "legacy prepare peaked at {legacy_worst} bytes, within the {BUDGET_BYTES}-byte budget; \
         tighten BUDGET_BYTES so the guard keeps discriminating"
    );
    eprintln!("mem_budget: worst streamed={streamed_worst} worst legacy={legacy_worst}");
}
