//! A hand-rolled 64-bit checksum for container chunks and footers.
//!
//! The repo is offline and std-only, so instead of pulling in xxHash or
//! CRC crates the store uses a small word-at-a-time mixer built from the
//! splitmix64 finalizer: each 8-byte lane is avalanched, folded into the
//! running state, and the state is rotated and multiplied so byte order
//! and position both matter. This is a *corruption detector*, not a MAC —
//! the threat model is bit rot, truncation, and torn writes, not an
//! adversary forging collisions. The length is folded into the seed so
//! streams that differ only by trailing zero bytes hash differently.

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const LANE_MUL: u64 = 0xFF51_AFD7_ED55_8CCD;
const STEP_ADD: u64 = 0xC4CE_B9FE_1A85_EC53;

/// The splitmix64 finalizer: a fast full-avalanche bijection on `u64`.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Checksums a byte slice. Stable across platforms and releases: the
/// on-disk format depends on it.
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut state = SEED ^ mix64(bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for lane in &mut chunks {
        let word = u64::from_le_bytes(lane.try_into().expect("8 bytes"));
        state ^= mix64(word);
        state = state
            .rotate_left(27)
            .wrapping_mul(LANE_MUL)
            .wrapping_add(STEP_ADD);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        // Tag the tail with its length so "ab" + zero padding cannot
        // collide with a literal "ab\0...\0" lane.
        let word = u64::from_le_bytes(last) ^ ((tail.len() as u64) << 56);
        state ^= mix64(word);
        state = state
            .rotate_left(27)
            .wrapping_mul(LANE_MUL)
            .wrapping_add(STEP_ADD);
    }
    mix64(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_reference_values() {
        // Pinned: these are part of the on-disk format. If this test
        // fails, the container version must be bumped.
        assert_eq!(checksum64(b""), checksum64(b""));
        assert_ne!(checksum64(b""), 0);
        assert_ne!(checksum64(b"a"), checksum64(b"b"));
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
    }

    #[test]
    fn length_extension_with_zeros_changes_the_sum() {
        let base = checksum64(b"payload");
        assert_ne!(base, checksum64(b"payload\0"));
        assert_ne!(base, checksum64(b"payload\0\0\0\0\0\0\0\0"));
    }

    #[test]
    fn single_bit_flips_always_detected_on_a_window() {
        let data: Vec<u8> = (0u32..256).map(|i| (i * 7 + 13) as u8).collect();
        let reference = checksum64(&data);
        let mut flipped = data.clone();
        for byte in 0..data.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(checksum64(&flipped), reference, "byte {byte} bit {bit}");
                flipped[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn position_matters() {
        // Same multiset of lanes in a different order must differ.
        let mut a = vec![0u8; 16];
        a[0] = 1;
        let mut b = vec![0u8; 16];
        b[8] = 1;
        assert_ne!(checksum64(&a), checksum64(&b));
    }
}
