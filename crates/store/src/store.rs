//! The on-disk artifact store: content-addressed keys, atomic publish,
//! quarantine, and streaming replay.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/<workload>-<scale>-v<fmt>-<digest>.dtrc   published artifacts
//! <root>/tmp/                                       in-flight writes
//! <root>/quarantine/                                corrupt files, kept
//! ```
//!
//! Publishing is write-to-temp + rename: readers never observe a
//! half-written artifact, and a crash leaves at worst an orphan under
//! `tmp/` (collected by [`Store::gc`]). Reads are fail-closed: any
//! corruption moves the file into `quarantine/` (preserving it for
//! inspection) and returns [`StoreError::Corrupt`]; the record/replay
//! entry point [`Store::get_or_record`] then transparently falls back to
//! re-tracing, so a damaged store degrades to the store-less behavior
//! instead of failing the experiment.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dee_vm::{Trace, TraceChunkSource, TraceReader, TraceRecord, TRACE_FORMAT_VERSION};

use crate::checksum::checksum64;
use crate::container::{read_info, ContainerInfo, ContainerReader, ContainerWriter};

/// File extension of published trace artifacts.
pub const ARTIFACT_EXT: &str = "dtrc";

/// File extension of published snapshot artifacts (`DEESNAP1`).
pub const SNAPSHOT_EXT: &str = "dsnp";

/// Leading magic of a snapshot artifact. The store verifies snapshots
/// generically — magic prefix plus trailing [`checksum64`] over the rest
/// of the file — so it never needs to understand the snapshot payload
/// (that lives in `dee-snap`, which depends on this crate).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"DEESNAP1";

/// Verifies a snapshot artifact's framing: the `DEESNAP1` magic and the
/// trailing little-endian [`checksum64`] over every preceding byte.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn verify_snapshot_bytes(bytes: &[u8]) -> Result<(), String> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err(format!("snapshot too short ({} bytes)", bytes.len()));
    }
    if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err("bad snapshot magic".to_string());
    }
    let body_end = bytes.len() - 8;
    let mut declared = [0u8; 8];
    declared.copy_from_slice(&bytes[body_end..]);
    let declared = u64::from_le_bytes(declared);
    let actual = checksum64(&bytes[..body_end]);
    if declared != actual {
        return Err(format!(
            "snapshot checksum mismatch: stored {declared:016x}, computed {actual:016x}"
        ));
    }
    Ok(())
}

/// FNV-1a 64-bit hash — the same stable, dependency-free digest the serve
/// cache uses, duplicated here so `dee-store` stays foundation-level (it
/// must not depend on `dee-serve`).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a over a word slice (little-endian), for input-memory images.
#[must_use]
pub fn fnv1a_words(words: &[i32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Maps a label to the filename-safe alphabet `[a-z0-9_-]` (uppercase is
/// folded; anything else becomes `-`).
fn sanitize(label: &str) -> String {
    let mut out: String = label
        .chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' | '-' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '-',
        })
        .collect();
    if out.is_empty() {
        out.push('-');
    }
    out
}

/// A content-addressed artifact key: *what* was traced (workload, scale)
/// plus a digest of the exact program listing, input memory image, and
/// trace-format version. Two builds of the "same" workload that differ in
/// any input byte get different keys, so a stale artifact can never be
/// replayed for the wrong content.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactKey {
    /// Human-readable workload tag (sanitized into the filename).
    pub workload: String,
    /// Human-readable scale/variant tag (sanitized into the filename).
    pub scale: String,
    /// FNV-1a digest over listing bytes, memory words, and
    /// [`TRACE_FORMAT_VERSION`].
    pub digest: u64,
}

impl ArtifactKey {
    /// Derives a key from the program listing and input memory image.
    #[must_use]
    pub fn new(workload: &str, scale: &str, program_listing: &str, memory: &[i32]) -> Self {
        let mut digest = fnv1a(program_listing.as_bytes());
        digest ^= fnv1a_words(memory).rotate_left(17);
        digest ^= u64::from(TRACE_FORMAT_VERSION).rotate_left(43);
        ArtifactKey {
            workload: sanitize(workload),
            scale: sanitize(scale),
            digest,
        }
    }

    /// The artifact's filename inside the store root.
    #[must_use]
    pub fn filename(&self) -> String {
        format!(
            "{}-{}-v{}-{:016x}.{ARTIFACT_EXT}",
            self.workload, self.scale, TRACE_FORMAT_VERSION, self.digest
        )
    }
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} [{:016x}]", self.workload, self.scale, self.digest)
    }
}

/// Where [`Store::get_or_record`] got the trace from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreSource {
    /// Replayed from a published artifact.
    Disk,
    /// Re-traced on the VM (and, best-effort, published).
    Vm,
}

/// Typed store failure.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure that is not a corruption verdict (permissions, disk
    /// full, ...).
    Io(io::Error),
    /// The artifact failed verification and was moved to `quarantine/`.
    Corrupt {
        /// The artifact's original path.
        path: PathBuf,
        /// What the verifier tripped on.
        detail: String,
        /// Where the file was moved (None if even the move failed).
        quarantined: Option<PathBuf>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt {
                path,
                detail,
                quarantined,
            } => {
                write!(f, "corrupt artifact {}: {detail}", path.display())?;
                match quarantined {
                    Some(q) => write!(f, " (quarantined to {})", q.display()),
                    None => write!(f, " (quarantine move failed)"),
                }
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Lock-free store counters, rendered both as Prometheus metrics
/// (`dee-serve`'s `/metrics`) and as the one-line stderr timing summary
/// the bench binaries print.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Artifacts replayed from disk.
    pub disk_hits: AtomicU64,
    /// Lookups that found no artifact.
    pub misses: AtomicU64,
    /// Artifacts published.
    pub writes: AtomicU64,
    /// Publishes that failed (best-effort; the trace is still served).
    pub write_errors: AtomicU64,
    /// Artifacts quarantined as corrupt.
    pub quarantined: AtomicU64,
    /// Total bytes written to published artifacts.
    pub bytes_written: AtomicU64,
    /// Nanoseconds spent replaying artifacts from disk.
    pub replay_nanos: AtomicU64,
    /// Nanoseconds spent re-tracing on the VM (inside `get_or_record`).
    pub trace_nanos: AtomicU64,
}

impl StoreStats {
    /// Renders Prometheus text-format metrics, all prefixed `dee_store_`.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP dee_store_{name} {help}\n# TYPE dee_store_{name} counter\ndee_store_{name} {value}\n"
            ));
        };
        counter(
            "disk_hits_total",
            "Traces replayed from the on-disk artifact store.",
            self.disk_hits.load(Ordering::Relaxed),
        );
        counter(
            "misses_total",
            "Store lookups that found no artifact.",
            self.misses.load(Ordering::Relaxed),
        );
        counter(
            "writes_total",
            "Artifacts published to the store.",
            self.writes.load(Ordering::Relaxed),
        );
        counter(
            "write_errors_total",
            "Best-effort artifact publishes that failed.",
            self.write_errors.load(Ordering::Relaxed),
        );
        counter(
            "quarantined_total",
            "Corrupt artifacts moved to quarantine.",
            self.quarantined.load(Ordering::Relaxed),
        );
        counter(
            "bytes_written_total",
            "Bytes written to published artifacts.",
            self.bytes_written.load(Ordering::Relaxed),
        );
        counter(
            "replay_nanos_total",
            "Nanoseconds spent replaying traces from disk.",
            self.replay_nanos.load(Ordering::Relaxed),
        );
        counter(
            "trace_nanos_total",
            "Nanoseconds spent re-tracing on the VM.",
            self.trace_nanos.load(Ordering::Relaxed),
        );
        out
    }

    /// One-line stderr summary, shaped like the bench pool's
    /// `dee_bench_pool_*` line (stderr, so stdout stays byte-identical).
    #[must_use]
    pub fn timing_line(&self, name: &str) -> String {
        format!(
            "dee_store_{name}: hits={} misses={} writes={} quarantined={} replay_ms={:.1} trace_ms={:.1}",
            self.disk_hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
            self.quarantined.load(Ordering::Relaxed),
            self.replay_nanos.load(Ordering::Relaxed) as f64 / 1e6,
            self.trace_nanos.load(Ordering::Relaxed) as f64 / 1e6,
        )
    }
}

/// One published artifact, as listed by [`Store::list`].
#[derive(Clone, Debug)]
pub struct StoreEntry {
    /// Filename inside the store root.
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
}

/// One artifact's digest, as exchanged by cluster anti-entropy sync.
/// The digest is Merkle-style: it folds the artifact's per-chunk
/// `DEESTOR1` raw checksums (read via the footer index, without touching
/// the payload) together with the total raw length and trace-format
/// version — so two stores agree on an artifact exactly when their
/// containers carry the same verified content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestEntry {
    /// Filename inside the store root.
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Content digest over the container's chunk checksums.
    pub digest: u64,
}

/// Whether `name` is an acceptable artifact filename for sync ingest:
/// the sanitized alphabet the store itself publishes (`[a-z0-9._-]`),
/// the `.dtrc` or `.dsnp` extension, and no way to escape the store
/// root.
#[must_use]
pub fn valid_artifact_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 255
        && (name.ends_with(&format!(".{ARTIFACT_EXT}"))
            || name.ends_with(&format!(".{SNAPSHOT_EXT}")))
        && !name.starts_with('.')
        && !name.contains("..")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-_.".contains(c))
}

/// Digests one artifact file from its footer index: seeks to each
/// chunk's declared raw checksum and folds them with [`checksum64`].
/// Cost is one footer read plus one 8-byte read per chunk — no payload
/// decompression.
///
/// # Errors
///
/// `InvalidData` when the footer is malformed; transport errors pass
/// through.
pub fn digest_file(path: &Path) -> io::Result<u64> {
    let mut file = File::open(path)?;
    let info = read_info(&mut file)?;
    let mut acc = Vec::with_capacity(info.chunks.len() * 8 + 16);
    for chunk in &info.chunks {
        // Chunk layout: tag(1) raw_len(4) enc_len(4) encoding(1) checksum(8).
        file.seek(SeekFrom::Start(chunk.offset + 10))?;
        let mut sum = [0u8; 8];
        file.read_exact(&mut sum)?;
        acc.extend_from_slice(&sum);
    }
    acc.extend_from_slice(&info.total_raw.to_le_bytes());
    acc.extend_from_slice(&info.header.trace_format_version.to_le_bytes());
    Ok(checksum64(&acc))
}

/// Folds a digest listing into one store-level digest: two stores whose
/// listings fold to the same value hold the same artifact set with the
/// same content. Entries must be name-sorted ([`Store::digest_listing`]
/// returns them that way).
#[must_use]
pub fn fold_digests(entries: &[DigestEntry]) -> u64 {
    let mut acc = Vec::with_capacity(entries.len() * 32);
    for entry in entries {
        acc.extend_from_slice(entry.name.as_bytes());
        acc.push(0);
        acc.extend_from_slice(&entry.digest.to_le_bytes());
    }
    checksum64(&acc)
}

/// What [`Store::gc`] removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Orphaned in-flight files removed from `tmp/`.
    pub tmp_removed: usize,
    /// Quarantined files removed.
    pub quarantine_removed: usize,
}

/// The artifact store rooted at one directory. Cheap to open; all state
/// is on disk plus the in-memory [`StoreStats`].
pub struct Store {
    root: PathBuf,
    stats: StoreStats,
    tmp_counter: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store at `root`, with its `tmp/` and
    /// `quarantine/` subdirectories.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(root.join("tmp"))?;
        fs::create_dir_all(root.join("quarantine"))?;
        Ok(Store {
            root,
            stats: StoreStats::default(),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's counters.
    #[must_use]
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Where `key`'s artifact lives (whether or not it exists yet).
    #[must_use]
    pub fn path_for(&self, key: &ArtifactKey) -> PathBuf {
        self.root.join(key.filename())
    }

    /// Whether `key`'s artifact is published (no verification).
    #[must_use]
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.path_for(key).is_file()
    }

    /// Publishes `trace` under `key`: the container is written to
    /// `tmp/`, fsynced, and renamed into place. Concurrent publishers of
    /// the same key race benignly — the content is deterministic, so
    /// last-rename-wins installs identical bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; nothing is published on error.
    pub fn put(&self, key: &ArtifactKey, trace: &Trace) -> Result<PathBuf, StoreError> {
        let unique = format!(
            "{}.{}.{}.tmp",
            key.filename(),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        );
        let tmp_path = self.root.join("tmp").join(unique);
        let publish = |tmp_path: &Path| -> io::Result<u64> {
            let file = File::create(tmp_path)?;
            let mut container = ContainerWriter::new(BufWriter::new(file), TRACE_FORMAT_VERSION)?;
            trace.write_to(&mut container)?;
            let writer = container.finish()?;
            let file = writer.into_inner().map_err(io::Error::from)?;
            file.sync_all()?;
            Ok(file.metadata()?.len())
        };
        match publish(&tmp_path) {
            Ok(bytes) => {
                let final_path = self.path_for(key);
                fs::rename(&tmp_path, &final_path)?;
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes_written.fetch_add(bytes, Ordering::Relaxed);
                Ok(final_path)
            }
            Err(e) => {
                fs::remove_file(&tmp_path).ok();
                Err(StoreError::Io(e))
            }
        }
    }

    /// Quarantines `key`'s published artifact (best-effort), for callers
    /// whose own validation rejected an otherwise-intact artifact — e.g.
    /// a replayed trace that disagrees with a workload's reference
    /// output. Returns the quarantine path when the move succeeded.
    pub fn quarantine_key(&self, key: &ArtifactKey) -> Option<PathBuf> {
        self.quarantine(&self.path_for(key))
    }

    /// Moves a corrupt artifact into `quarantine/` (best-effort).
    fn quarantine(&self, path: &Path) -> Option<PathBuf> {
        let name = path.file_name()?;
        let dest = self.root.join("quarantine").join(name);
        fs::rename(path, &dest).ok()?;
        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
        Some(dest)
    }

    fn corrupt(&self, path: PathBuf, detail: String) -> StoreError {
        let quarantined = self.quarantine(&path);
        StoreError::Corrupt {
            path,
            detail,
            quarantined,
        }
    }

    /// Opens a streaming reader over `key`'s artifact. `Ok(None)` when
    /// absent; a malformed header quarantines immediately. Corruption in
    /// the body surfaces as `InvalidData` from the reader's methods —
    /// callers that need quarantine-on-body-corruption use
    /// [`Store::load`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on a bad header, [`StoreError::Io`] on
    /// other failures.
    pub fn open_reader(&self, key: &ArtifactKey) -> Result<Option<StoreReader>, StoreError> {
        let path = self.path_for(key);
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        match StoreReader::from_file(file, &path) {
            Ok(reader) => Ok(Some(reader)),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                Err(self.corrupt(path, e.to_string()))
            }
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Loads and fully verifies `key`'s artifact. `Ok(None)` when absent.
    /// Any corruption — bad checksum, truncation, trailing bytes, a
    /// trace-format version mismatch — quarantines the file and returns
    /// [`StoreError::Corrupt`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] or [`StoreError::Io`] as above.
    pub fn load(&self, key: &ArtifactKey) -> Result<Option<Trace>, StoreError> {
        let mut reader = match self.open_reader(key)? {
            Some(reader) => reader,
            None => return Ok(None),
        };
        let path = self.path_for(key);
        let mut records = Vec::new();
        let collect =
            |reader: &mut StoreReader, records: &mut Vec<TraceRecord>| -> io::Result<Vec<i32>> {
                while let Some(record) = reader.next_record()? {
                    records.push(record);
                }
                let output = reader.read_output()?;
                reader.finish()?;
                Ok(output)
            };
        match collect(&mut reader, &mut records) {
            Ok(output) => Ok(Some(Trace::from_parts(records, output))),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                Err(self.corrupt(path, e.to_string()))
            }
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// The record/replay entry point: replay `key`'s artifact if
    /// published and intact, else produce the trace with `produce` (a VM
    /// run) and publish it best-effort. A corrupt artifact is
    /// quarantined and silently falls back to `produce` — the caller
    /// sees the same `(Trace, StoreSource::Vm)` as a plain miss, with
    /// the quarantine visible in [`StoreStats`].
    ///
    /// # Errors
    ///
    /// Only `produce`'s error propagates (stringified).
    pub fn get_or_record<E: fmt::Display>(
        &self,
        key: &ArtifactKey,
        produce: impl FnOnce() -> Result<Trace, E>,
    ) -> Result<(Trace, StoreSource), String> {
        let replay_start = Instant::now();
        match self.load(key) {
            Ok(Some(trace)) => {
                self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .replay_nanos
                    .fetch_add(replay_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                return Ok((trace, StoreSource::Disk));
            }
            Ok(None) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Quarantined (or unreadable): degrade to re-tracing.
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        let trace_start = Instant::now();
        let trace = produce().map_err(|e| e.to_string())?;
        self.stats
            .trace_nanos
            .fetch_add(trace_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if self.put(key, &trace).is_err() {
            self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
        }
        Ok((trace, StoreSource::Vm))
    }

    /// Lists published trace artifacts, sorted by name.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list(&self) -> io::Result<Vec<StoreEntry>> {
        self.list_with_ext(ARTIFACT_EXT)
    }

    /// Lists published snapshot artifacts, sorted by name.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list_snapshots(&self) -> io::Result<Vec<StoreEntry>> {
        self.list_with_ext(SNAPSHOT_EXT)
    }

    fn list_with_ext(&self, ext: &str) -> io::Result<Vec<StoreEntry>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.ends_with(&format!(".{ext}")) {
                continue;
            }
            entries.push(StoreEntry {
                name: name.to_string(),
                bytes: entry.metadata()?.len(),
            });
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(entries)
    }

    /// Digests every published artifact — traces *and* snapshots — for
    /// anti-entropy exchange, sorted by name. Trace digests fold the
    /// container's per-chunk checksums; snapshot digests are a
    /// [`checksum64`] over the whole (verified) file. Artifacts that fail
    /// their integrity check are skipped — the read path quarantines them
    /// on its own, and advertising them to peers would replicate damage.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn digest_listing(&self) -> io::Result<Vec<DigestEntry>> {
        let mut out = Vec::new();
        for entry in self.list()? {
            match digest_file(&self.root.join(&entry.name)) {
                Ok(digest) => out.push(DigestEntry {
                    name: entry.name,
                    bytes: entry.bytes,
                    digest,
                }),
                Err(_) => continue,
            }
        }
        for entry in self.list_snapshots()? {
            let Ok(bytes) = fs::read(self.root.join(&entry.name)) else {
                continue;
            };
            if verify_snapshot_bytes(&bytes).is_err() {
                continue;
            }
            out.push(DigestEntry {
                name: entry.name,
                bytes: entry.bytes,
                digest: checksum64(&bytes),
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    /// Reads a published artifact's raw container bytes for replication.
    /// `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failures; a name outside the published
    /// alphabet is rejected as `Io(InvalidInput)` (never resolved against
    /// the filesystem).
    pub fn artifact_bytes(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        if !valid_artifact_name(name) {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid artifact name `{name}`"),
            )));
        }
        match fs::read(self.root.join(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Installs replicated artifact bytes under `name`, fail-closed: the
    /// bytes are written to `tmp/`, verified end-to-end (every chunk
    /// checksum, the trace layout, the footer), and only then renamed
    /// into place — a peer can never publish a half-synced or corrupt
    /// artifact here. Returns `false` when `name` is already published
    /// (artifact bytes are deterministic, so same name means same
    /// content and the install is an idempotent no-op).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the bytes fail verification (nothing
    /// is published), [`StoreError::Io`] on invalid names or I/O
    /// failures.
    pub fn install_artifact(&self, name: &str, bytes: &[u8]) -> Result<bool, StoreError> {
        if !valid_artifact_name(name) {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid artifact name `{name}`"),
            )));
        }
        let final_path = self.root.join(name);
        if final_path.is_file() {
            return Ok(false);
        }
        let unique = format!(
            "{name}.{}.{}.tmp",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        );
        let tmp_path = self.root.join("tmp").join(unique);
        let stage = |tmp_path: &Path| -> io::Result<()> {
            fs::write(tmp_path, bytes)?;
            File::open(tmp_path)?.sync_all()?;
            Ok(())
        };
        if let Err(e) = stage(&tmp_path) {
            fs::remove_file(&tmp_path).ok();
            return Err(StoreError::Io(e));
        }
        let verdict = if name.ends_with(&format!(".{SNAPSHOT_EXT}")) {
            verify_snapshot_bytes(bytes)
        } else {
            verify_file(&tmp_path).map(|_| ())
        };
        if let Err(detail) = verdict {
            fs::remove_file(&tmp_path).ok();
            return Err(StoreError::Corrupt {
                path: final_path,
                detail,
                quarantined: None,
            });
        }
        fs::rename(&tmp_path, &final_path)?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(true)
    }

    /// Publishes snapshot bytes under `name` (a `.dsnp` filename built by
    /// `dee-snap`), atomically: write to `tmp/`, verify the generic
    /// snapshot framing, fsync, rename. Snapshot content is deterministic
    /// for a given (artifact, record index), so overwriting an existing
    /// name installs identical bytes.
    ///
    /// # Errors
    ///
    /// `Io(InvalidInput)` on a name outside the published alphabet,
    /// [`StoreError::Corrupt`] when the bytes fail framing verification
    /// (nothing is published), [`StoreError::Io`] on I/O failures.
    pub fn put_snapshot(&self, name: &str, bytes: &[u8]) -> Result<PathBuf, StoreError> {
        if !valid_artifact_name(name) || !name.ends_with(&format!(".{SNAPSHOT_EXT}")) {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid snapshot name `{name}`"),
            )));
        }
        let final_path = self.root.join(name);
        if let Err(detail) = verify_snapshot_bytes(bytes) {
            return Err(StoreError::Corrupt {
                path: final_path,
                detail,
                quarantined: None,
            });
        }
        let unique = format!(
            "{name}.{}.{}.tmp",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        );
        let tmp_path = self.root.join("tmp").join(unique);
        let stage = |tmp_path: &Path| -> io::Result<()> {
            fs::write(tmp_path, bytes)?;
            File::open(tmp_path)?.sync_all()?;
            Ok(())
        };
        if let Err(e) = stage(&tmp_path) {
            fs::remove_file(&tmp_path).ok();
            return Err(StoreError::Io(e));
        }
        fs::rename(&tmp_path, &final_path)?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(final_path)
    }

    /// Loads and frame-verifies a published snapshot. `Ok(None)` when
    /// absent. A snapshot that fails verification is quarantined and
    /// reported as [`StoreError::Corrupt`] — exactly the `DEESTOR1`
    /// fail-closed semantics, so a flipped byte can never warm-start a
    /// simulation from bad state.
    ///
    /// # Errors
    ///
    /// `Io(InvalidInput)` on an invalid name, [`StoreError::Corrupt`] on
    /// verification failure, [`StoreError::Io`] otherwise.
    pub fn load_snapshot(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        if !valid_artifact_name(name) || !name.ends_with(&format!(".{SNAPSHOT_EXT}")) {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid snapshot name `{name}`"),
            )));
        }
        let path = self.root.join(name);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        match verify_snapshot_bytes(&bytes) {
            Ok(()) => Ok(Some(bytes)),
            Err(detail) => Err(self.corrupt(path, detail)),
        }
    }

    /// Removes in-flight orphans (`tmp/`) and quarantined files.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures; individual removals are
    /// best-effort.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        for (dir, counter) in [
            ("tmp", &mut report.tmp_removed),
            ("quarantine", &mut report.quarantine_removed),
        ] {
            for entry in fs::read_dir(self.root.join(dir))? {
                let entry = entry?;
                if entry.path().is_file() && fs::remove_file(entry.path()).is_ok() {
                    *counter += 1;
                }
            }
        }
        Ok(report)
    }
}

/// Streams `TraceRecord`s out of a published artifact chunk-by-chunk: at
/// no point is more than one decompressed chunk plus one record resident,
/// so a 100 M-instruction trace replays in constant memory.
pub struct StoreReader {
    inner: TraceReader<ContainerReader<BufReader<File>>>,
}

impl StoreReader {
    /// Opens an artifact file directly (the store-level entry point is
    /// [`Store::open_reader`]).
    ///
    /// # Errors
    ///
    /// `InvalidData` on a malformed container header, a trace-format
    /// version mismatch, or a bad trace magic.
    pub fn from_file(file: File, path: &Path) -> io::Result<StoreReader> {
        let container = ContainerReader::new(BufReader::new(file))?;
        let version = container.header().trace_format_version;
        if version != TRACE_FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: trace format v{version} (this build reads v{TRACE_FORMAT_VERSION})",
                    path.display()
                ),
            ));
        }
        let inner = TraceReader::new(container)?;
        Ok(StoreReader { inner })
    }

    /// The record count the artifact declares.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.inner.record_count()
    }

    /// Yields the next record, or `None` after the last.
    ///
    /// # Errors
    ///
    /// `InvalidData` on any corruption (chunk checksum, record layout).
    pub fn next_record(&mut self) -> io::Result<Option<TraceRecord>> {
        self.inner.next_record()
    }

    /// Reads the output stream (consuming any remaining records first).
    ///
    /// # Errors
    ///
    /// As [`next_record`](Self::next_record).
    pub fn read_output(&mut self) -> io::Result<Vec<i32>> {
        self.inner.read_output()
    }

    /// Verifies the container footer and end-of-file. Reading to the end
    /// via [`read_output`](Self::read_output) + `finish` constitutes a
    /// full-file verification.
    ///
    /// # Errors
    ///
    /// `InvalidData` on trailing bytes or a footer mismatch.
    pub fn finish(&mut self) -> io::Result<()> {
        // TraceReader::expect_end consumes self; emulate it here so the
        // caller can keep the reader in a struct. Ok(0) from the
        // container reader implies the footer verified.
        if !self.inner.output_consumed() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "output stream not consumed before end check",
            ));
        }
        let mut probe = [0u8; 1];
        loop {
            match std::io::Read::read(self.inner_mut(), &mut probe) {
                Ok(0) => return Ok(()),
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "trailing payload after trace output stream",
                    ))
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn inner_mut(&mut self) -> &mut ContainerReader<BufReader<File>> {
        // Safe split: TraceReader exposes its transport for framing
        // checks once the logical stream is consumed.
        self.inner.transport_mut()
    }
}

/// Streaming replay: a [`StoreReader`] is a chunk source, so a published
/// artifact flows straight into the incremental prepare pipeline without
/// materializing the record vector. `take_output` also verifies the
/// container footer and EOF, so a fully drained source constitutes a
/// full-file verification.
impl TraceChunkSource for StoreReader {
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>, max: usize) -> Result<usize, String> {
        let mut appended = 0usize;
        while appended < max {
            match self.next_record().map_err(|e| e.to_string())? {
                Some(record) => {
                    buf.push(record);
                    appended += 1;
                }
                None => break,
            }
        }
        Ok(appended)
    }

    fn take_output(&mut self) -> Result<Vec<i32>, String> {
        let output = self.read_output().map_err(|e| e.to_string())?;
        self.finish().map_err(|e| e.to_string())?;
        Ok(output)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.record_count())
    }
}

/// Verifies one artifact file end-to-end (used by `dee trace verify`):
/// every chunk checksum, the record layout, the footer, and EOF.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn verify_file(path: &Path) -> Result<VerifyReport, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut reader =
        StoreReader::from_file(file, path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut records = 0u64;
    while let Some(_record) = reader
        .next_record()
        .map_err(|e| format!("{}: record {records}: {e}", path.display()))?
    {
        records += 1;
    }
    let output = reader
        .read_output()
        .map_err(|e| format!("{}: output stream: {e}", path.display()))?;
    reader
        .finish()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(VerifyReport {
        records,
        output_words: output.len() as u64,
        output_checksum: dee_vm::output_checksum(&output),
    })
}

/// Reads an artifact's footer metadata without scanning the payload
/// (used by `dee trace info`).
///
/// # Errors
///
/// A human-readable description of why the footer is unreadable.
pub fn info_file(path: &Path) -> Result<ContainerInfo, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_info(file).map_err(|e| format!("{}: {e}", path.display()))
}

/// What [`verify_file`] established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Records streamed and validated.
    pub records: u64,
    /// Output words read.
    pub output_words: u64,
    /// FNV-1a checksum of the output stream.
    pub output_checksum: u64,
}
