//! The `DEESTOR1` chunked container format.
//!
//! A container wraps an arbitrary payload byte stream (here: a `DEETRC1`
//! trace) in checksummed, independently-decodable chunks:
//!
//! ```text
//! header  : magic "DEESTOR1" | u32 container version | u32 trace format
//!           version | u32 chunk size | u32 reserved (0)        (24 bytes)
//! chunk   : u8 tag (1) | u32 raw len | u32 enc len | u8 encoding
//!           (0 = raw, 1 = LZ) | u64 checksum of RAW bytes | enc bytes
//! footer  : u8 tag (0) | body | u64 body checksum | u64 footer offset
//!           | magic "DEESEND1"
//! body    : u64 chunk count | per chunk { u64 offset, u32 raw len,
//!           u32 enc len } | u64 total raw len
//! ```
//!
//! Design notes:
//!
//! * **Streaming first.** The tag byte before every frame lets a plain
//!   `Read` consumer walk the file without seeking; the footer index at
//!   the end lets a seeking consumer (`dee trace info`) read metadata
//!   without touching the payload.
//! * **Checksums cover the raw bytes**, not the encoded bytes, so a
//!   decoder bug and disk corruption are caught by the same check.
//! * **Bounded allocation.** Declared lengths are validated against
//!   [`MAX_CHUNK_SIZE`] before any buffer is sized from them; a hostile
//!   header cannot force a huge reservation.
//! * **The reader is fail-closed.** Every deviation — bad magic, bad
//!   checksum, truncated frame, trailing bytes, a footer that disagrees
//!   with the chunks actually seen — is `ErrorKind::InvalidData`, which
//!   the store layer maps to quarantine-and-fall-back.

use std::io::{self, Read, Seek, SeekFrom, Write};

use crate::checksum::checksum64;
use crate::compress;

/// Leading magic of every container file.
pub const CONTAINER_MAGIC: &[u8; 8] = b"DEESTOR1";
/// Trailing magic; its absence means a torn or truncated write.
pub const END_MAGIC: &[u8; 8] = b"DEESEND1";
/// Version of the container layout itself (independent of the trace
/// format version it carries).
pub const CONTAINER_VERSION: u32 = 1;
/// Default payload bytes per chunk.
pub const DEFAULT_CHUNK_SIZE: u32 = 256 * 1024;
/// Upper bound accepted for the header's chunk size and any declared
/// chunk length — the allocation cap for hostile inputs.
pub const MAX_CHUNK_SIZE: u32 = 8 * 1024 * 1024;

const TAG_CHUNK: u8 = 1;
const TAG_FOOTER: u8 = 0;
const ENC_RAW: u8 = 0;
const ENC_LZ: u8 = 1;
/// header magic + 3 × u32 + reserved u32.
const HEADER_BYTES: u64 = 24;
/// body checksum + footer offset + end magic.
const TRAILER_BYTES: u64 = 24;

fn invalid(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

/// The reader is fail-closed: running out of bytes mid-frame IS
/// corruption (a torn or truncated file), so it surfaces as
/// `InvalidData` like every other detection, and the store quarantines
/// it the same way.
fn eof_is_corrupt(e: io::Error, what: &str) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        invalid(format!("container truncated in {what}"))
    } else {
        e
    }
}

/// Everything the header declares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContainerHeader {
    /// Container layout version (must equal [`CONTAINER_VERSION`]).
    pub container_version: u32,
    /// Version of the wrapped trace format.
    pub trace_format_version: u32,
    /// Payload bytes per full chunk.
    pub chunk_size: u32,
}

/// One chunk's entry in the footer index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// File offset of the chunk's tag byte.
    pub offset: u64,
    /// Payload bytes the chunk decodes to.
    pub raw_len: u32,
    /// Bytes the chunk occupies on disk (after encoding).
    pub enc_len: u32,
}

/// Footer metadata, as read back by [`read_info`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainerInfo {
    /// The header fields.
    pub header: ContainerHeader,
    /// Per-chunk index.
    pub chunks: Vec<ChunkEntry>,
    /// Total payload bytes across all chunks.
    pub total_raw: u64,
    /// Total file length in bytes.
    pub file_len: u64,
}

impl ContainerInfo {
    /// Total encoded payload bytes (excluding framing).
    #[must_use]
    pub fn total_encoded(&self) -> u64 {
        self.chunks.iter().map(|c| u64::from(c.enc_len)).sum()
    }
}

fn write_header(
    sink: &mut impl Write,
    trace_format_version: u32,
    chunk_size: u32,
) -> io::Result<()> {
    sink.write_all(CONTAINER_MAGIC)?;
    sink.write_all(&CONTAINER_VERSION.to_le_bytes())?;
    sink.write_all(&trace_format_version.to_le_bytes())?;
    sink.write_all(&chunk_size.to_le_bytes())?;
    sink.write_all(&0u32.to_le_bytes())?;
    Ok(())
}

fn read_header(source: &mut impl Read) -> io::Result<ContainerHeader> {
    let mut magic = [0u8; 8];
    source.read_exact(&mut magic)?;
    if &magic != CONTAINER_MAGIC {
        return Err(invalid("bad container magic"));
    }
    let mut word = [0u8; 4];
    source.read_exact(&mut word)?;
    let container_version = u32::from_le_bytes(word);
    if container_version != CONTAINER_VERSION {
        return Err(invalid(format!(
            "unsupported container version {container_version} (expected {CONTAINER_VERSION})"
        )));
    }
    source.read_exact(&mut word)?;
    let trace_format_version = u32::from_le_bytes(word);
    source.read_exact(&mut word)?;
    let chunk_size = u32::from_le_bytes(word);
    if chunk_size == 0 || chunk_size > MAX_CHUNK_SIZE {
        return Err(invalid(format!("chunk size {chunk_size} out of range")));
    }
    source.read_exact(&mut word)?;
    if u32::from_le_bytes(word) != 0 {
        return Err(invalid("reserved header field is nonzero"));
    }
    Ok(ContainerHeader {
        container_version,
        trace_format_version,
        chunk_size,
    })
}

fn footer_body(chunks: &[ChunkEntry], total_raw: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + chunks.len() * 16 + 8);
    body.extend_from_slice(&(chunks.len() as u64).to_le_bytes());
    for chunk in chunks {
        body.extend_from_slice(&chunk.offset.to_le_bytes());
        body.extend_from_slice(&chunk.raw_len.to_le_bytes());
        body.extend_from_slice(&chunk.enc_len.to_le_bytes());
    }
    body.extend_from_slice(&total_raw.to_le_bytes());
    body
}

/// A `Write` adapter that chunks, compresses, checksums, and indexes the
/// payload stream. [`finish`](ContainerWriter::finish) MUST be called —
/// dropping the writer without it leaves the container truncated (which
/// the reader will reject, so a torn write is detected, not silently
/// half-read).
pub struct ContainerWriter<W: Write> {
    sink: W,
    pending: Vec<u8>,
    chunk_size: usize,
    offset: u64,
    chunks: Vec<ChunkEntry>,
    total_raw: u64,
}

impl<W: Write> ContainerWriter<W> {
    /// Starts a container, writing the header immediately.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    pub fn new(sink: W, trace_format_version: u32) -> io::Result<Self> {
        Self::with_chunk_size(sink, trace_format_version, DEFAULT_CHUNK_SIZE)
    }

    /// Starts a container with an explicit chunk size (clamped into
    /// `1..=MAX_CHUNK_SIZE`).
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    pub fn with_chunk_size(
        mut sink: W,
        trace_format_version: u32,
        chunk_size: u32,
    ) -> io::Result<Self> {
        let chunk_size = chunk_size.clamp(1, MAX_CHUNK_SIZE);
        write_header(&mut sink, trace_format_version, chunk_size)?;
        Ok(ContainerWriter {
            sink,
            pending: Vec::with_capacity(chunk_size as usize),
            chunk_size: chunk_size as usize,
            offset: HEADER_BYTES,
            chunks: Vec::new(),
            total_raw: 0,
        })
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let raw = std::mem::take(&mut self.pending);
        let checksum = checksum64(&raw);
        let compressed = compress::compress(&raw);
        let (encoding, payload): (u8, &[u8]) = if compressed.len() < raw.len() {
            (ENC_LZ, &compressed)
        } else {
            (ENC_RAW, &raw)
        };
        self.sink.write_all(&[TAG_CHUNK])?;
        self.sink.write_all(&(raw.len() as u32).to_le_bytes())?;
        self.sink.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.sink.write_all(&[encoding])?;
        self.sink.write_all(&checksum.to_le_bytes())?;
        self.sink.write_all(payload)?;
        self.chunks.push(ChunkEntry {
            offset: self.offset,
            raw_len: raw.len() as u32,
            enc_len: payload.len() as u32,
        });
        // tag + raw_len + enc_len + encoding + checksum + payload
        self.offset += 1 + 4 + 4 + 1 + 8 + payload.len() as u64;
        self.total_raw += raw.len() as u64;
        self.pending = raw;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial chunk and writes the footer; returns the
    /// underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_chunk()?;
        let body = footer_body(&self.chunks, self.total_raw);
        self.sink.write_all(&[TAG_FOOTER])?;
        self.sink.write_all(&body)?;
        self.sink.write_all(&checksum64(&body).to_le_bytes())?;
        self.sink.write_all(&self.offset.to_le_bytes())?;
        self.sink.write_all(END_MAGIC)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl<W: Write> Write for ContainerWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut remaining = buf;
        while !remaining.is_empty() {
            let space = self.chunk_size - self.pending.len();
            let take = space.min(remaining.len());
            self.pending.extend_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            if self.pending.len() == self.chunk_size {
                self.flush_chunk()?;
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Deliberately does NOT cut a chunk: chunk boundaries are a
        // function of the payload alone, keeping container bytes
        // deterministic regardless of the caller's flush pattern.
        Ok(())
    }
}

/// A `Read` adapter that streams the payload back out of a container,
/// verifying every chunk checksum on the way and the footer at the end.
///
/// `read` returns `Ok(0)` only after the footer and trailing magic have
/// been verified and the underlying stream is exhausted — a consumer that
/// reads to EOF has therefore verified the whole file.
pub struct ContainerReader<R: Read> {
    source: R,
    header: ContainerHeader,
    current: Vec<u8>,
    position: usize,
    offset: u64,
    seen: Vec<ChunkEntry>,
    total_raw: u64,
    finished: bool,
}

impl<R: Read> ContainerReader<R> {
    /// Opens a container, reading and validating the header.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic/version/chunk size; transport errors
    /// pass through.
    pub fn new(mut source: R) -> io::Result<Self> {
        let header = read_header(&mut source).map_err(|e| eof_is_corrupt(e, "header"))?;
        Ok(ContainerReader {
            source,
            header,
            current: Vec::new(),
            position: 0,
            offset: HEADER_BYTES,
            seen: Vec::new(),
            total_raw: 0,
            finished: false,
        })
    }

    /// The validated header.
    #[must_use]
    pub fn header(&self) -> &ContainerHeader {
        &self.header
    }

    /// Chunks decoded so far.
    #[must_use]
    pub fn chunks_read(&self) -> usize {
        self.seen.len()
    }

    /// Payload bytes decoded so far.
    #[must_use]
    pub fn raw_bytes_read(&self) -> u64 {
        self.total_raw
    }

    /// Loads and verifies the next frame. Returns `false` once the footer
    /// has been verified (payload exhausted).
    fn refill(&mut self) -> io::Result<bool> {
        if self.finished {
            return Ok(false);
        }
        let mut tag = [0u8; 1];
        self.source
            .read_exact(&mut tag)
            .map_err(|e| eof_is_corrupt(e, "frame tag (footer missing)"))?;
        match tag[0] {
            TAG_CHUNK => {
                let mut word = [0u8; 4];
                self.source
                    .read_exact(&mut word)
                    .map_err(|e| eof_is_corrupt(e, "chunk header"))?;
                let raw_len = u32::from_le_bytes(word);
                self.source
                    .read_exact(&mut word)
                    .map_err(|e| eof_is_corrupt(e, "chunk header"))?;
                let enc_len = u32::from_le_bytes(word);
                let mut enc_byte = [0u8; 1];
                self.source
                    .read_exact(&mut enc_byte)
                    .map_err(|e| eof_is_corrupt(e, "chunk header"))?;
                let mut sum = [0u8; 8];
                self.source
                    .read_exact(&mut sum)
                    .map_err(|e| eof_is_corrupt(e, "chunk header"))?;
                let declared = u64::from_le_bytes(sum);
                if raw_len == 0 || raw_len > self.header.chunk_size {
                    return Err(invalid(format!("chunk raw length {raw_len} out of range")));
                }
                if enc_len == 0 || enc_len > raw_len {
                    // The writer stores incompressible chunks raw, so a
                    // valid encoded length never exceeds the raw length.
                    return Err(invalid(format!(
                        "chunk encoded length {enc_len} out of range"
                    )));
                }
                let mut encoded = vec![0u8; enc_len as usize];
                self.source
                    .read_exact(&mut encoded)
                    .map_err(|e| eof_is_corrupt(e, "chunk payload"))?;
                let raw = match enc_byte[0] {
                    ENC_RAW => {
                        if enc_len != raw_len {
                            return Err(invalid("raw-encoded chunk with mismatched lengths"));
                        }
                        encoded
                    }
                    ENC_LZ => compress::decompress(&encoded, raw_len as usize)
                        .map_err(|e| invalid(format!("chunk decompression failed: {e}")))?,
                    other => return Err(invalid(format!("unknown chunk encoding {other}"))),
                };
                if checksum64(&raw) != declared {
                    return Err(invalid(format!(
                        "chunk {} checksum mismatch",
                        self.seen.len()
                    )));
                }
                self.seen.push(ChunkEntry {
                    offset: self.offset,
                    raw_len,
                    enc_len,
                });
                self.offset += 1 + 4 + 4 + 1 + 8 + u64::from(enc_len);
                self.total_raw += u64::from(raw_len);
                self.current = raw;
                self.position = 0;
                Ok(true)
            }
            TAG_FOOTER => {
                self.verify_footer()?;
                self.finished = true;
                Ok(false)
            }
            other => Err(invalid(format!("unknown frame tag {other}"))),
        }
    }

    fn verify_footer(&mut self) -> io::Result<()> {
        let footer_offset = self.offset;
        let expected_body = footer_body(&self.seen, self.total_raw);
        let mut body = vec![0u8; expected_body.len()];
        self.source
            .read_exact(&mut body)
            .map_err(|e| eof_is_corrupt(e, "footer body"))?;
        if body != expected_body {
            return Err(invalid("footer index disagrees with the chunks read"));
        }
        let mut word8 = [0u8; 8];
        self.source
            .read_exact(&mut word8)
            .map_err(|e| eof_is_corrupt(e, "footer trailer"))?;
        if u64::from_le_bytes(word8) != checksum64(&body) {
            return Err(invalid("footer checksum mismatch"));
        }
        self.source
            .read_exact(&mut word8)
            .map_err(|e| eof_is_corrupt(e, "footer trailer"))?;
        if u64::from_le_bytes(word8) != footer_offset {
            return Err(invalid("footer offset mismatch"));
        }
        let mut magic = [0u8; 8];
        self.source
            .read_exact(&mut magic)
            .map_err(|e| eof_is_corrupt(e, "footer trailer"))?;
        if &magic != END_MAGIC {
            return Err(invalid("bad end magic"));
        }
        let mut probe = [0u8; 1];
        loop {
            match self.source.read(&mut probe) {
                Ok(0) => return Ok(()),
                Ok(_) => return Err(invalid("trailing bytes after container end")),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

impl<R: Read> Read for ContainerReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.position == self.current.len() {
            if !self.refill()? {
                return Ok(0);
            }
        }
        let n = buf.len().min(self.current.len() - self.position);
        buf[..n].copy_from_slice(&self.current[self.position..self.position + n]);
        self.position += n;
        Ok(n)
    }
}

/// Reads container metadata via the footer index without touching the
/// payload (requires a seekable source; `dee trace info` uses this).
///
/// # Errors
///
/// `InvalidData` when the trailer, footer, or header is malformed.
pub fn read_info<R: Read + Seek>(mut source: R) -> io::Result<ContainerInfo> {
    let file_len = source.seek(SeekFrom::End(0))?;
    // Smallest possible container: header + footer with zero chunks.
    if file_len < HEADER_BYTES + 1 + 16 + TRAILER_BYTES {
        return Err(invalid("file too short to be a container"));
    }
    source.seek(SeekFrom::Start(0))?;
    let header = read_header(&mut source)?;
    source.seek(SeekFrom::Start(file_len - TRAILER_BYTES))?;
    let mut trailer = [0u8; TRAILER_BYTES as usize];
    source.read_exact(&mut trailer)?;
    if &trailer[16..24] != END_MAGIC {
        return Err(invalid("bad end magic"));
    }
    let body_checksum = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
    let footer_offset = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
    if footer_offset < HEADER_BYTES || footer_offset + 1 + TRAILER_BYTES > file_len {
        return Err(invalid("footer offset out of range"));
    }
    let body_len = (file_len - TRAILER_BYTES)
        .checked_sub(footer_offset + 1)
        .ok_or_else(|| invalid("footer offset out of range"))?;
    if body_len < 16 || body_len > file_len {
        return Err(invalid("footer body length out of range"));
    }
    source.seek(SeekFrom::Start(footer_offset))?;
    let mut tag = [0u8; 1];
    source.read_exact(&mut tag)?;
    if tag[0] != TAG_FOOTER {
        return Err(invalid("footer offset does not point at a footer"));
    }
    let mut body = vec![0u8; body_len as usize];
    source.read_exact(&mut body)?;
    if checksum64(&body) != body_checksum {
        return Err(invalid("footer checksum mismatch"));
    }
    let chunk_count = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    if 8 + chunk_count.saturating_mul(16) + 8 != body_len {
        return Err(invalid("footer body length disagrees with chunk count"));
    }
    let mut chunks = Vec::with_capacity(chunk_count.min(1 << 16) as usize);
    let mut at = 8usize;
    for _ in 0..chunk_count {
        chunks.push(ChunkEntry {
            offset: u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes")),
            raw_len: u32::from_le_bytes(body[at + 8..at + 12].try_into().expect("4 bytes")),
            enc_len: u32::from_le_bytes(body[at + 12..at + 16].try_into().expect("4 bytes")),
        });
        at += 16;
    }
    let total_raw = u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
    Ok(ContainerInfo {
        header,
        chunks,
        total_raw,
        file_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 31 + i / 7) % 251) as u8).collect()
    }

    fn build(bytes: &[u8], chunk_size: u32) -> Vec<u8> {
        let mut writer =
            ContainerWriter::with_chunk_size(Vec::new(), 1, chunk_size).expect("header");
        writer.write_all(bytes).expect("payload");
        writer.finish().expect("footer")
    }

    fn read_all(container: &[u8]) -> io::Result<Vec<u8>> {
        let mut reader = ContainerReader::new(container)?;
        let mut out = Vec::new();
        reader.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn round_trip_across_chunk_sizes() {
        let raw = payload(10_000);
        for chunk_size in [1u32, 7, 64, 4_096, 1 << 20] {
            let container = build(&raw, chunk_size);
            assert_eq!(read_all(&container).expect("round trip"), raw);
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let container = build(&[], 4_096);
        assert_eq!(read_all(&container).expect("round trip"), Vec::<u8>::new());
    }

    #[test]
    fn container_bytes_are_deterministic() {
        let raw = payload(50_000);
        assert_eq!(build(&raw, 4_096), build(&raw, 4_096));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let raw = payload(2_000);
        let container = build(&raw, 512);
        for cut in 0..container.len() {
            let err = read_all(&container[..cut]).expect_err("truncation must fail");
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected_or_detected() {
        // Flip each byte in turn: the read must either fail or still
        // yield the exact original payload (some header bytes — e.g. the
        // reserved field — are checked directly; none may corrupt data).
        let raw = payload(1_500);
        let container = build(&raw, 256);
        let mut tampered = container.clone();
        for i in 0..container.len() {
            tampered[i] ^= 0x5A;
            match read_all(&tampered) {
                Ok(decoded) => assert_eq!(decoded, raw, "silent corruption at byte {i}"),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData, "byte {i}: {e}"),
            }
            tampered[i] = container[i];
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut container = build(&payload(100), 64);
        container.push(0);
        let err = read_all(&container).expect_err("trailing byte");
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn info_reads_footer_without_payload_scan() {
        let raw = payload(10_000);
        let container = build(&raw, 1_024);
        let info = read_info(Cursor::new(&container)).expect("info");
        assert_eq!(info.header.trace_format_version, 1);
        assert_eq!(info.header.chunk_size, 1_024);
        assert_eq!(info.chunks.len(), 10);
        assert_eq!(info.total_raw, 10_000);
        assert_eq!(info.file_len, container.len() as u64);
        assert!(info.total_encoded() > 0);
    }

    #[test]
    fn info_rejects_torn_files() {
        let raw = payload(3_000);
        let container = build(&raw, 512);
        for cut in [0, 10, container.len() / 2, container.len() - 1] {
            assert!(
                read_info(Cursor::new(&container[..cut])).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn hostile_chunk_lengths_do_not_allocate() {
        // A forged header claiming max chunk size plus a chunk claiming
        // a huge encoded length must fail on the length check (enc > raw)
        // or on truncation — never by reserving the claimed bytes.
        let mut forged = Vec::new();
        forged.extend_from_slice(CONTAINER_MAGIC);
        forged.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
        forged.extend_from_slice(&1u32.to_le_bytes());
        forged.extend_from_slice(&MAX_CHUNK_SIZE.to_le_bytes());
        forged.extend_from_slice(&0u32.to_le_bytes());
        forged.push(1); // chunk tag
        forged.extend_from_slice(&MAX_CHUNK_SIZE.to_le_bytes()); // raw_len
        forged.extend_from_slice(&MAX_CHUNK_SIZE.to_le_bytes()); // enc_len
        forged.push(0); // raw encoding
        forged.extend_from_slice(&0u64.to_le_bytes()); // checksum
                                                       // No payload bytes at all.
        let err = read_all(&forged).expect_err("forged chunk");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // And a chunk size beyond the cap is rejected at the header.
        let mut oversized = forged.clone();
        oversized[16..20].copy_from_slice(&(MAX_CHUNK_SIZE + 1).to_le_bytes());
        assert!(read_all(&oversized).is_err());
    }
}
