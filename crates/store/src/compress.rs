//! Hand-rolled byte-oriented LZ compression for container chunks.
//!
//! The format is a deliberately tiny LZ77 variant (in the LZ4 family):
//! a token stream where each token byte selects one of two shapes —
//!
//! ```text
//! token < 0x80 : literal run; the next (token + 1) bytes are copied
//!                verbatim (runs of 1..=128)
//! token >= 0x80: match; length = (token & 0x7F) + 4 (4..=131), followed
//!                by a little-endian u16 distance (1..=65535) counted
//!                back from the current output position
//! ```
//!
//! Matches may overlap their own output (`distance < length`), which is
//! what makes plain RLE a special case: distance 1 replicates the last
//! byte. Trace records are 20-byte structs with heavily repeating
//! register/flag bytes and clustered addresses, so even this greedy,
//! one-candidate matcher typically reaches 3–6× on real traces.
//!
//! Compression is deterministic (same input → same output bytes, on every
//! platform): the byte-identical replay invariant extends to the
//! container files themselves, so re-recording an artifact is a no-op at
//! the file level too. Decompression validates every token against the
//! declared output length and never reads or writes out of bounds —
//! hostile inputs produce a typed error, not a panic.

/// Shortest match worth encoding (a match token costs 3 bytes).
const MIN_MATCH: usize = 4;
/// Longest match one token can express.
const MAX_MATCH: usize = 0x7F + MIN_MATCH;
/// Longest literal run one token can express.
const MAX_LITERAL_RUN: usize = 0x80;
/// Farthest back a match may reach (u16 distance).
const MAX_DISTANCE: usize = u16::MAX as usize;
/// Hash-table size for the 4-byte match finder (power of two).
const TABLE_BITS: u32 = 15;

#[inline]
fn hash4(sequence: u32) -> usize {
    // Fibonacci hashing of the 4-byte window.
    ((sequence.wrapping_mul(2_654_435_761)) >> (32 - TABLE_BITS)) as usize
}

fn flush_literals(out: &mut Vec<u8>, literals: &[u8]) {
    for run in literals.chunks(MAX_LITERAL_RUN) {
        out.push((run.len() - 1) as u8);
        out.extend_from_slice(run);
    }
}

/// Compresses `raw` into the token stream. Never fails; the output may be
/// larger than the input for incompressible data (the container layer
/// falls back to storing such chunks raw).
#[must_use]
pub fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    let mut table = vec![0u32; 1 << TABLE_BITS]; // position + 1; 0 = empty
    let mut literal_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= raw.len() {
        let window = u32::from_le_bytes(raw[i..i + 4].try_into().expect("4 bytes"));
        let slot = hash4(window);
        let candidate = table[slot] as usize;
        table[slot] = (i + 1) as u32;
        if candidate > 0 {
            let c = candidate - 1;
            let distance = i - c;
            if (1..=MAX_DISTANCE).contains(&distance) && raw[c..c + 4] == raw[i..i + 4] {
                let mut len = MIN_MATCH;
                // Comparing source and destination positions byte-by-byte
                // is exactly the overlapped-copy semantics the decoder
                // implements, so `c + len` may run past `i` safely.
                while i + len < raw.len() && len < MAX_MATCH && raw[c + len] == raw[i + len] {
                    len += 1;
                }
                flush_literals(&mut out, &raw[literal_start..i]);
                out.push(0x80 | (len - MIN_MATCH) as u8);
                out.extend_from_slice(&(distance as u16).to_le_bytes());
                i += len;
                literal_start = i;
                continue;
            }
        }
        i += 1;
    }
    flush_literals(&mut out, &raw[literal_start..]);
    out
}

/// Decompresses a token stream that must decode to exactly `raw_len`
/// bytes.
///
/// # Errors
///
/// Returns a description of the first malformed token: a literal run or
/// match overrunning the input, a distance reaching before the start of
/// the output, or a decoded length that misses `raw_len`. No input can
/// cause a panic, unbounded allocation, or out-of-bounds access.
pub fn decompress(encoded: &[u8], raw_len: usize) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < encoded.len() {
        let token = encoded[i];
        i += 1;
        if token < 0x80 {
            let n = token as usize + 1;
            if i + n > encoded.len() {
                return Err(format!("literal run of {n} overruns input at offset {i}"));
            }
            if out.len() + n > raw_len {
                return Err("decoded data exceeds declared chunk length".to_string());
            }
            out.extend_from_slice(&encoded[i..i + n]);
            i += n;
        } else {
            let len = (token & 0x7F) as usize + MIN_MATCH;
            if i + 2 > encoded.len() {
                return Err(format!("match token truncated at offset {i}"));
            }
            let distance = u16::from_le_bytes([encoded[i], encoded[i + 1]]) as usize;
            i += 2;
            if distance == 0 || distance > out.len() {
                return Err(format!(
                    "match distance {distance} out of range at output position {}",
                    out.len()
                ));
            }
            if out.len() + len > raw_len {
                return Err("decoded data exceeds declared chunk length".to_string());
            }
            for _ in 0..len {
                let byte = out[out.len() - distance];
                out.push(byte);
            }
        }
    }
    if out.len() != raw_len {
        return Err(format!(
            "decoded {} bytes where the chunk header declared {raw_len}",
            out.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(raw: &[u8]) -> Vec<u8> {
        let encoded = compress(raw);
        decompress(&encoded, raw.len()).expect("round trip")
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(round_trip(b""), b"");
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(round_trip(b"abc"), b"abc");
    }

    #[test]
    fn rle_heavy_input_shrinks_hard() {
        let raw = vec![0x42u8; 10_000];
        let encoded = compress(&raw);
        assert!(encoded.len() < raw.len() / 20, "{} bytes", encoded.len());
        assert_eq!(decompress(&encoded, raw.len()).unwrap(), raw);
    }

    #[test]
    fn repeating_structs_shrink() {
        // 20-byte pseudo-records with a few varying fields, like real
        // trace streams.
        let mut raw = Vec::new();
        for i in 0u32..2_000 {
            let mut rec = [0u8; 20];
            rec[0..4].copy_from_slice(&(i % 37).to_le_bytes());
            rec[4] = 1;
            rec[5] = 2;
            rec[6] = 0xFF;
            rec[8..12].copy_from_slice(&(0x1000 + (i % 5)).to_le_bytes());
            raw.extend_from_slice(&rec);
        }
        let encoded = compress(&raw);
        assert!(encoded.len() * 2 < raw.len(), "{} bytes", encoded.len());
        assert_eq!(decompress(&encoded, raw.len()).unwrap(), raw);
    }

    #[test]
    fn incompressible_input_round_trips() {
        // xorshift noise: no 4-byte window repeats nearby.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut raw = Vec::new();
        for _ in 0..4_096 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            raw.extend_from_slice(&state.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
        }
        assert_eq!(round_trip(&raw), raw);
    }

    #[test]
    fn long_literal_runs_split_correctly() {
        let raw: Vec<u8> = (0u16..700).map(|i| (i % 251) as u8).collect();
        assert_eq!(round_trip(&raw), raw);
    }

    #[test]
    fn compression_is_deterministic() {
        let raw: Vec<u8> = (0u32..5_000).flat_map(|i| (i % 97).to_le_bytes()).collect();
        assert_eq!(compress(&raw), compress(&raw));
    }

    #[test]
    fn hostile_streams_error_cleanly() {
        // Match before any output exists.
        assert!(decompress(&[0x80, 1, 0], 4).is_err());
        // Literal run overruns the input.
        assert!(decompress(&[0x7F, 1, 2], 128).is_err());
        // Truncated match token.
        assert!(decompress(&[0x00, 0xAA, 0x85, 0x01], 10).is_err());
        // Declared length too small for the decoded data.
        assert!(decompress(&[0x03, 1, 2, 3, 4], 2).is_err());
        // Declared length never reached.
        assert!(decompress(&[0x00, 0xAA], 100).is_err());
        // Zero distance.
        assert!(decompress(&[0x00, 0xAA, 0x80, 0, 0], 10).is_err());
    }

    #[test]
    fn overlapping_match_replicates() {
        // "abab..." encodes as 2 literals + one overlapped match.
        let raw: Vec<u8> = std::iter::repeat_n([b'a', b'b'], 64).flatten().collect();
        assert_eq!(round_trip(&raw), raw);
    }
}
