//! `dee-store` — a persistent, checksummed trace-artifact store with
//! streaming replay.
//!
//! The paper's evaluation re-simulates the *same* dynamic traces (up to
//! 100 M instructions per benchmark) under dozens of resource/predictor
//! configurations. Tracing is the expensive, pure-function step; this
//! crate makes it a **record-once / replay-many** artifact:
//!
//! * [`container`] — the `DEESTOR1` chunked container format: per-chunk
//!   hand-rolled 64-bit checksums ([`checksum64`]), hand-rolled
//!   byte-oriented LZ/RLE compression ([`compress`]/[`decompress`]), and
//!   a seekable footer index, wrapping the existing `DEETRC1` trace
//!   layout;
//! * [`Store`] — content-addressed artifacts
//!   (`workload`-`scale`-`v<fmt>`-`digest`) published atomically
//!   (write-to-temp + rename) and read fail-closed: corruption is
//!   quarantined with a typed error, never a panic, and
//!   [`Store::get_or_record`] transparently falls back to re-tracing;
//! * [`StoreReader`] — streams `TraceRecord`s chunk-by-chunk, so replay
//!   runs in constant memory regardless of trace length.
//!
//! The invariant threaded through everything: **replay is byte-identical
//! to re-tracing**. Consumers (the bench sweeps, `dee-serve`'s disk
//! cache tier, the `dee trace` CLI) verify replayed output against the
//! workload reference and quarantine on any disagreement, so a store can
//! speed experiments up but can never silently change a result.
//!
//! See DESIGN.md §9 for the on-disk layout and the failure-mode table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checksum;
mod compress;
pub mod container;
mod store;

pub use checksum::checksum64;
pub use compress::{compress, decompress};
pub use container::{ContainerInfo, ContainerReader, ContainerWriter, DEFAULT_CHUNK_SIZE};
pub use store::{
    digest_file, fnv1a, fnv1a_words, fold_digests, info_file, valid_artifact_name, verify_file,
    verify_snapshot_bytes, ArtifactKey, DigestEntry, GcReport, Store, StoreEntry, StoreError,
    StoreReader, StoreSource, StoreStats, VerifyReport, ARTIFACT_EXT, SNAPSHOT_EXT, SNAPSHOT_MAGIC,
};

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::{Assembler, Reg};
    use dee_vm::{trace_program, Trace};
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dee_store_unit_{}_{tag}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
        }
        dir
    }

    fn sample_trace(n: i32) -> (Trace, ArtifactKey) {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, n);
        asm.label("top");
        asm.sw(r1, Reg::ZERO, 32);
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.out(r1);
        asm.halt();
        let program = asm.assemble().unwrap();
        let trace = trace_program(&program, &[], 100_000).unwrap();
        let key = ArtifactKey::new("unit", &format!("n{n}"), &program.to_listing(), &[]);
        (trace, key)
    }

    #[test]
    fn put_load_round_trip() {
        let dir = scratch("round_trip");
        let store = Store::open(&dir).unwrap();
        let (trace, key) = sample_trace(40);
        assert!(!store.contains(&key));
        assert!(store.load(&key).unwrap().is_none());
        store.put(&key, &trace).unwrap();
        assert!(store.contains(&key));
        let loaded = store.load(&key).unwrap().expect("published");
        assert_eq!(loaded.records(), trace.records());
        assert_eq!(loaded.output(), trace.output());
        assert_eq!(loaded.output_checksum(), trace.output_checksum());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn artifact_bytes_are_deterministic() {
        let dir = scratch("determinism");
        let store = Store::open(&dir).unwrap();
        let (trace, key) = sample_trace(25);
        let first = store.put(&key, &trace).unwrap();
        let bytes_a = std::fs::read(&first).unwrap();
        let second = store.put(&key, &trace).unwrap();
        assert_eq!(first, second, "same key, same path");
        assert_eq!(bytes_a, std::fs::read(&second).unwrap(), "same content");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn get_or_record_records_once_then_replays() {
        let dir = scratch("record_replay");
        let store = Store::open(&dir).unwrap();
        let (trace, key) = sample_trace(12);
        let expected_records = trace.records().to_vec();
        let (first, source) = store
            .get_or_record(&key, || Ok::<_, String>(trace))
            .unwrap();
        assert_eq!(source, StoreSource::Vm);
        let (second, source) = store
            .get_or_record(&key, || Err::<Trace, _>("must not re-trace".to_string()))
            .unwrap();
        assert_eq!(source, StoreSource::Disk);
        assert_eq!(second.records(), expected_records.as_slice());
        assert_eq!(second.output(), first.output());
        assert_eq!(
            store
                .stats()
                .disk_hits
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(
            store
                .stats()
                .writes
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corruption_quarantines_and_falls_back() {
        let dir = scratch("quarantine");
        let store = Store::open(&dir).unwrap();
        let (trace, key) = sample_trace(33);
        let path = store.put(&key, &trace).unwrap();
        // Flip one byte in the middle of the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = store.load(&key).expect_err("must detect corruption");
        match &err {
            StoreError::Corrupt { quarantined, .. } => {
                let q = quarantined.as_ref().expect("moved to quarantine");
                assert!(q.exists(), "quarantined file kept for inspection");
            }
            StoreError::Io(e) => panic!("expected Corrupt, got Io: {e}"),
        }
        assert!(!store.contains(&key), "corrupt file no longer published");
        // get_or_record degrades to re-tracing and re-publishes.
        let (replayed, source) = store
            .get_or_record(&key, || Ok::<_, String>(trace.clone()))
            .unwrap();
        assert_eq!(source, StoreSource::Vm);
        assert_eq!(replayed.output(), trace.output());
        assert!(store.contains(&key), "republished after fallback");
        assert_eq!(
            store
                .stats()
                .quarantined
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn streaming_reader_matches_eager_load() {
        let dir = scratch("streaming");
        let store = Store::open(&dir).unwrap();
        let (trace, key) = sample_trace(60);
        store.put(&key, &trace).unwrap();
        let mut reader = store.open_reader(&key).unwrap().expect("published");
        assert_eq!(reader.record_count(), trace.len() as u64);
        let mut streamed = Vec::new();
        while let Some(record) = reader.next_record().unwrap() {
            streamed.push(record);
        }
        assert_eq!(streamed.as_slice(), trace.records());
        assert_eq!(reader.read_output().unwrap(), trace.output());
        reader.finish().unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn list_gc_and_verify() {
        let dir = scratch("list_gc");
        let store = Store::open(&dir).unwrap();
        let (trace_a, key_a) = sample_trace(5);
        let (trace_b, key_b) = sample_trace(6);
        let path_a = store.put(&key_a, &trace_a).unwrap();
        store.put(&key_b, &trace_b).unwrap();
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 2);
        assert!(listed.windows(2).all(|w| w[0].name <= w[1].name));
        let report = verify_file(&path_a).expect("intact artifact verifies");
        assert_eq!(report.records, trace_a.len() as u64);
        assert_eq!(report.output_checksum, trace_a.output_checksum());
        let info = info_file(&path_a).expect("footer readable");
        assert!(info.total_raw > 0);
        // Corrupt key_a, trip quarantine, then gc clears it.
        let mut bytes = std::fs::read(&path_a).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path_a, &bytes).unwrap();
        assert!(store.load(&key_a).is_err());
        let report = store.gc().unwrap();
        assert_eq!(report.quarantine_removed, 1);
        assert_eq!(store.gc().unwrap(), GcReport::default(), "gc is idempotent");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn digest_listing_agrees_across_stores_and_detects_content() {
        let dir_a = scratch("digest_a");
        let dir_b = scratch("digest_b");
        let store_a = Store::open(&dir_a).unwrap();
        let store_b = Store::open(&dir_b).unwrap();
        let (trace_1, key_1) = sample_trace(21);
        let (trace_2, key_2) = sample_trace(22);
        store_a.put(&key_1, &trace_1).unwrap();
        store_a.put(&key_2, &trace_2).unwrap();
        store_b.put(&key_1, &trace_1).unwrap();
        let list_a = store_a.digest_listing().unwrap();
        let list_b = store_b.digest_listing().unwrap();
        assert_eq!(list_a.len(), 2);
        assert_eq!(list_b.len(), 1);
        let in_a = list_a.iter().find(|e| e.name == key_1.filename()).unwrap();
        assert_eq!(
            in_a, &list_b[0],
            "same artifact content must digest identically on both stores"
        );
        assert_ne!(fold_digests(&list_a), fold_digests(&list_b));
        store_b.put(&key_2, &trace_2).unwrap();
        assert_eq!(
            fold_digests(&store_b.digest_listing().unwrap()),
            fold_digests(&list_a),
            "converged stores fold to the same digest"
        );
        // Corrupting payload bytes changes (or hides) the digest.
        let path = store_a.path_for(&key_1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[40] ^= 0xFF; // inside the first chunk frame
        std::fs::write(&path, &bytes).unwrap();
        let relisted = store_a.digest_listing().unwrap();
        let entry = relisted.iter().find(|e| e.name == key_1.filename());
        assert!(
            entry.is_none() || entry.unwrap().digest != in_a.digest,
            "content change must change the advertised digest"
        );
        std::fs::remove_dir_all(dir_a).ok();
        std::fs::remove_dir_all(dir_b).ok();
    }

    #[test]
    fn install_artifact_round_trips_and_is_fail_closed() {
        let dir_src = scratch("install_src");
        let dir_dst = scratch("install_dst");
        let src = Store::open(&dir_src).unwrap();
        let dst = Store::open(&dir_dst).unwrap();
        let (trace, key) = sample_trace(17);
        src.put(&key, &trace).unwrap();
        let name = key.filename();
        let bytes = src.artifact_bytes(&name).unwrap().expect("published");
        assert!(dst.install_artifact(&name, &bytes).unwrap());
        assert!(
            !dst.install_artifact(&name, &bytes).unwrap(),
            "re-install is an idempotent no-op"
        );
        let replayed = dst.load(&key).unwrap().expect("installed");
        assert_eq!(replayed.output(), trace.output());
        // Corrupt bytes are rejected before publish, leaving no trace.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        let (_, other_key) = sample_trace(18);
        let err = dst
            .install_artifact(&other_key.filename(), &bad)
            .expect_err("corrupt sync bytes must be refused");
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        assert!(!dst.contains(&other_key));
        let tmp_orphans = std::fs::read_dir(dir_dst.join("tmp")).unwrap().count();
        assert_eq!(tmp_orphans, 0, "failed install leaves no tmp orphan");
        // Hostile names never touch the filesystem.
        for name in ["../escape.dtrc", "UPPER.dtrc", "x/y.dtrc", "", "plain"] {
            assert!(!valid_artifact_name(name), "{name}");
            assert!(dst.artifact_bytes(name).is_err());
            assert!(dst.install_artifact(name, &bytes).is_err());
        }
        assert!(valid_artifact_name(&name));
        std::fs::remove_dir_all(dir_src).ok();
        std::fs::remove_dir_all(dir_dst).ok();
    }

    fn sample_snapshot(payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(payload);
        let sum = checksum64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        bytes
    }

    #[test]
    fn snapshot_put_load_round_trip_and_quarantine() {
        let dir = scratch("snapshot");
        let store = Store::open(&dir).unwrap();
        let name = "unit-tiny-v1-00000000000000aa-r4096.dsnp";
        let bytes = sample_snapshot(b"snapshot-payload");
        assert!(store.load_snapshot(name).unwrap().is_none());
        store.put_snapshot(name, &bytes).unwrap();
        assert_eq!(store.load_snapshot(name).unwrap().unwrap(), bytes);
        assert_eq!(store.list_snapshots().unwrap().len(), 1);
        assert!(store.list().unwrap().is_empty(), "dsnp not a trace");
        // Bad framing is refused at publish time.
        let mut bad = bytes.clone();
        bad[10] ^= 0x40;
        assert!(matches!(
            store.put_snapshot(name, &bad),
            Err(StoreError::Corrupt { .. })
        ));
        // On-disk corruption quarantines at load time.
        let path = dir.join(name);
        std::fs::write(&path, &bad).unwrap();
        match store.load_snapshot(name) {
            Err(StoreError::Corrupt { quarantined, .. }) => {
                assert!(quarantined.expect("moved").exists());
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(store.load_snapshot(name).unwrap().is_none());
        // Hostile names never touch the filesystem.
        for bad_name in ["../x.dsnp", "x.dtrc.dsnp.other", "UPPER.dsnp", "x"] {
            assert!(store.put_snapshot(bad_name, &bytes).is_err(), "{bad_name}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn snapshots_join_digest_listing_and_sync_install() {
        let dir_a = scratch("snap_digest_a");
        let dir_b = scratch("snap_digest_b");
        let store_a = Store::open(&dir_a).unwrap();
        let store_b = Store::open(&dir_b).unwrap();
        let (trace, key) = sample_trace(14);
        store_a.put(&key, &trace).unwrap();
        let snap_name = "unit-tiny-v1-00000000000000bb-r0.dsnp";
        let snap_bytes = sample_snapshot(b"state-at-zero");
        store_a.put_snapshot(snap_name, &snap_bytes).unwrap();
        let listing = store_a.digest_listing().unwrap();
        assert_eq!(listing.len(), 2, "trace and snapshot both advertised");
        assert!(listing.windows(2).all(|w| w[0].name <= w[1].name));
        // Replicate the snapshot through the generic artifact channel.
        assert!(valid_artifact_name(snap_name));
        let fetched = store_a.artifact_bytes(snap_name).unwrap().unwrap();
        assert!(store_b.install_artifact(snap_name, &fetched).unwrap());
        assert_eq!(
            store_b.load_snapshot(snap_name).unwrap().unwrap(),
            snap_bytes
        );
        // Corrupt snapshot bytes are refused by install, fail-closed.
        let mut bad = fetched.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        let other = "unit-tiny-v1-00000000000000cc-r0.dsnp";
        assert!(matches!(
            store_b.install_artifact(other, &bad),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(store_b.load_snapshot(other).unwrap().is_none());
        std::fs::remove_dir_all(dir_a).ok();
        std::fs::remove_dir_all(dir_b).ok();
    }

    #[test]
    fn verify_snapshot_bytes_rejects_bad_framing() {
        assert!(verify_snapshot_bytes(&sample_snapshot(b"ok")).is_ok());
        assert!(verify_snapshot_bytes(b"short").is_err());
        assert!(verify_snapshot_bytes(b"NOTSNAP_0123456789abcdef").is_err());
        let mut flipped = sample_snapshot(b"payload");
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(verify_snapshot_bytes(&flipped).is_err());
    }

    #[test]
    fn keys_separate_content_and_are_filename_safe() {
        let a = ArtifactKey::new("xlisp", "tiny", "listing-a", &[1, 2]);
        let b = ArtifactKey::new("xlisp", "tiny", "listing-b", &[1, 2]);
        let c = ArtifactKey::new("xlisp", "tiny", "listing-a", &[2, 1]);
        assert_ne!(a.digest, b.digest, "program content keyed");
        assert_ne!(a.digest, c.digest, "memory content keyed");
        let weird = ArtifactKey::new("Prog/RAM: 1", "A D-HOC", "l", &[]);
        assert!(weird
            .filename()
            .chars()
            .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || "-_.".contains(ch)));
        assert!(weird.filename().ends_with(".dtrc"));
    }

    #[test]
    fn version_mismatch_is_corruption() {
        let dir = scratch("version");
        let store = Store::open(&dir).unwrap();
        let (trace, key) = sample_trace(9);
        let path = store.put(&key, &trace).unwrap();
        // Bump the trace-format version field in the header (offset 12).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12] ^= 0x02;
        std::fs::write(&path, &bytes).unwrap();
        match store.load(&key) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("trace format"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
