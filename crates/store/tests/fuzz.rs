//! Seeded fuzzing of the two on-disk trace formats.
//!
//! Hostile bytes must never panic the readers: every outcome is either a
//! clean success or a typed error (`io::Error` / the `String` verdicts of
//! `verify_file`). For the checksummed container format the contract is
//! stronger — if a mutated file still *reads*, the data it yields must be
//! identical to the original, because every payload byte is covered by a
//! chunk checksum (only don't-care bytes like header padding can flip
//! without tripping it). The bare `DEETRC1` stream carries no checksums,
//! so there the contract is only "typed error or valid trace".
//!
//! All mutations come from a seeded xorshift64* generator, so a failure
//! reproduces exactly.

use std::io::Cursor;
use std::path::PathBuf;

use dee_store::{verify_file, ContainerWriter, VerifyReport};
use dee_vm::{Trace, TRACE_FORMAT_VERSION};
use dee_workloads::Scale;

/// xorshift64* — the same mixer family the serve fault plan uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

fn baseline_trace() -> Trace {
    dee_workloads::eqntott::build(Scale::Tiny)
        .validate()
        .expect("workload traces cleanly")
}

fn container_bytes(trace: &Trace) -> Vec<u8> {
    let mut container =
        ContainerWriter::new(Vec::new(), TRACE_FORMAT_VERSION).expect("in-memory container");
    trace.write_to(&mut container).expect("write trace");
    container.finish().expect("finish container")
}

fn bare_bytes(trace: &Trace) -> Vec<u8> {
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("write trace");
    bytes
}

/// A scratch file path unique to this test binary.
fn scratch_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dee_store_fuzz_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{tag}.dtrc"))
}

fn verify_bytes(path: &PathBuf, bytes: &[u8]) -> Result<VerifyReport, String> {
    std::fs::write(path, bytes).expect("write scratch artifact");
    verify_file(path)
}

#[test]
fn mutated_containers_fail_typed_or_read_back_identical() {
    let trace = baseline_trace();
    let pristine = container_bytes(&trace);
    let path = scratch_file("mutate");
    let baseline = verify_bytes(&path, &pristine).expect("pristine container verifies");
    assert_eq!(baseline.records, trace.len() as u64);

    let mut rng = Rng(0xDEE5_70FE);
    let mut survivors = 0u32;
    for round in 0..300 {
        let mut bytes = pristine.clone();
        // 1–4 independent byte corruptions per round: bit flips, byte
        // swaps with random values, and zeroing.
        for _ in 0..=rng.below(3) {
            let at = rng.below(bytes.len());
            bytes[at] = match rng.below(3) {
                0 => bytes[at] ^ (1 << rng.below(8)),
                1 => rng.next() as u8,
                _ => 0,
            };
        }
        if bytes == pristine {
            continue;
        }
        // Must not panic; on success the data must match the original.
        if let Ok(report) = verify_bytes(&path, &bytes) {
            assert_eq!(
                report, baseline,
                "round {round}: mutated container verified but yielded different data"
            );
            survivors += 1;
        }
    }
    // Don't-care bytes (header padding) are rare; most rounds must fail.
    assert!(
        survivors < 30,
        "{survivors}/300 mutations went undetected — checksum coverage regressed"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_containers_always_fail_typed() {
    let trace = baseline_trace();
    let pristine = container_bytes(&trace);
    let path = scratch_file("truncate");
    let mut rng = Rng(0x7A_BCDE);
    // Every structural boundary plus a seeded sample of interior cuts.
    let mut cuts = vec![0, 1, 7, 8, 23, 24, pristine.len() - 1];
    for _ in 0..80 {
        cuts.push(rng.below(pristine.len()));
    }
    for cut in cuts {
        let result = verify_bytes(&path, &pristine[..cut]);
        assert!(
            result.is_err(),
            "container truncated to {cut}/{} bytes verified",
            pristine.len()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn mutated_bare_traces_never_panic() {
    let trace = baseline_trace();
    let pristine = bare_bytes(&trace);
    let mut rng = Rng(0x0BAD_5EED);
    for _ in 0..500 {
        let mut bytes = pristine.clone();
        for _ in 0..=rng.below(4) {
            let at = rng.below(bytes.len());
            bytes[at] = match rng.below(3) {
                0 => bytes[at] ^ (1 << rng.below(8)),
                1 => rng.next() as u8,
                _ => 0xFF,
            };
        }
        // The bare stream has no checksums, so a flipped operand byte can
        // legally decode to a different valid trace. The contract here is
        // purely "typed result, no panic, no unbounded allocation".
        let _ = Trace::read_from(Cursor::new(bytes));
    }
}

#[test]
fn truncated_bare_traces_always_fail_typed() {
    let trace = baseline_trace();
    let pristine = bare_bytes(&trace);
    let mut rng = Rng(0xC0FFEE);
    let mut cuts = vec![0, 1, 7, 8, 15, 16, pristine.len() - 1];
    for _ in 0..120 {
        cuts.push(rng.below(pristine.len()));
    }
    for cut in cuts {
        assert!(
            Trace::read_from(Cursor::new(pristine[..cut].to_vec())).is_err(),
            "bare trace truncated to {cut}/{} bytes read back",
            pristine.len()
        );
    }
}

#[test]
fn garbage_and_cross_format_bytes_fail_typed() {
    let trace = baseline_trace();
    let path = scratch_file("garbage");
    let mut rng = Rng(0x6A2BA6E);
    for len in [0usize, 1, 8, 24, 63, 1024] {
        let junk: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        assert!(verify_bytes(&path, &junk).is_err(), "{len} junk bytes");
        assert!(Trace::read_from(Cursor::new(junk)).is_err(), "{len} junk");
    }
    // A bare DEETRC1 stream is not a container and vice versa.
    let bare = bare_bytes(&trace);
    assert!(
        verify_bytes(&path, &bare).is_err(),
        "bare stream accepted as container"
    );
    let container = container_bytes(&trace);
    assert!(
        Trace::read_from(Cursor::new(container)).is_err(),
        "container accepted as bare stream"
    );
    std::fs::remove_file(&path).ok();
}
