//! Record → publish → replay round trips over the real workload suite.
//!
//! The invariant the entire store rests on: a trace replayed from a
//! published artifact is *byte-identical* to a fresh VM run of the same
//! workload — same records, same output stream, same checksum, and the
//! same serialized bytes. Checked both through the eager `Store::load`
//! path and the constant-memory `StoreReader` streaming path.

use std::path::PathBuf;

use dee_store::{ArtifactKey, Store};
use dee_vm::{output_checksum, Trace};
use dee_workloads::{all_workloads, Scale, Workload};

fn scratch_store(tag: &str) -> (Store, PathBuf) {
    let dir = std::env::temp_dir().join(format!("dee_store_rt_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    (Store::open(&dir).expect("open scratch store"), dir)
}

fn key_for(workload: &Workload) -> ArtifactKey {
    ArtifactKey::new(
        &workload.name,
        "tiny",
        &workload.program.to_listing(),
        &workload.initial_memory,
    )
}

fn serialized(trace: &Trace) -> Vec<u8> {
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("serialize trace");
    bytes
}

#[test]
fn every_workload_replays_byte_identical_through_both_read_paths() {
    let (store, dir) = scratch_store("suite");
    for workload in all_workloads(Scale::Tiny) {
        let fresh = workload.validate().expect("workload traces cleanly");
        let key = key_for(&workload);
        store.put(&key, &fresh).expect("publish artifact");

        // Eager path: the whole trace back in one call.
        let loaded = store
            .load(&key)
            .expect("read artifact")
            .expect("artifact exists");
        assert_eq!(loaded.records(), fresh.records(), "{key}: records drifted");
        assert_eq!(loaded.output(), fresh.output(), "{key}: output drifted");
        assert_eq!(
            output_checksum(loaded.output()),
            output_checksum(fresh.output()),
            "{key}: checksum drifted"
        );
        assert_eq!(
            serialized(&loaded),
            serialized(&fresh),
            "{key}: serialized bytes drifted"
        );

        // Streaming path: record-by-record, then output, then the
        // footer/EOF check.
        let mut reader = store
            .open_reader(&key)
            .expect("open reader")
            .expect("artifact exists");
        assert_eq!(reader.record_count(), fresh.len() as u64);
        let mut streamed = Vec::with_capacity(fresh.len());
        while let Some(record) = reader.next_record().expect("stream record") {
            streamed.push(record);
        }
        assert_eq!(streamed, fresh.records(), "{key}: streamed records drift");
        let output = reader.read_output().expect("stream output");
        assert_eq!(output, fresh.output(), "{key}: streamed output drifted");
        reader.finish().expect("footer verifies at EOF");

        // And the replay output still matches the workload's reference.
        assert_eq!(
            loaded.output(),
            workload.expected_output,
            "{key}: replay disagrees with the reference output"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn republish_is_idempotent_and_keys_separate_scales() {
    let (store, dir) = scratch_store("idempotent");
    let workload = dee_workloads::xlisp::build(Scale::Tiny);
    let trace = workload.validate().expect("trace");
    let key = key_for(&workload);
    let first = store.put(&key, &trace).expect("publish");
    let first_bytes = std::fs::read(&first).expect("read artifact");
    // Publishing the same content again lands on the same path with the
    // same bytes (last-rename-wins of identical files).
    let second = store.put(&key, &trace).expect("republish");
    assert_eq!(first, second);
    assert_eq!(std::fs::read(&second).expect("read artifact"), first_bytes);

    // A different scale is a different key — both coexist.
    let small = dee_workloads::xlisp::build(Scale::Small);
    let small_key = ArtifactKey::new(
        &small.name,
        "small",
        &small.program.to_listing(),
        &small.initial_memory,
    );
    assert_ne!(key.filename(), small_key.filename());
    store
        .put(&small_key, &small.validate().expect("trace"))
        .expect("publish small");
    assert!(store.contains(&key) && store.contains(&small_key));
    assert_eq!(store.list().expect("list").len(), 2);
    std::fs::remove_dir_all(dir).ok();
}
