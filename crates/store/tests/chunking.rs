//! Chunk-boundary fuzz for the streaming replay path.
//!
//! `StoreReader` implements `TraceChunkSource`, and the streaming
//! prepare pipeline's byte-identical guarantee rests on chunked
//! iteration yielding *exactly* the record stream of a whole-trace
//! read — regardless of how records land on `DEESTOR1` chunk frames or
//! how large the pull batches are. This test sweeps seeded random trace
//! lengths against pathological pull sizes (1, a prime, the default) so
//! every alignment of a final partial chunk gets exercised, plus the
//! degenerate empty trace.

use std::path::PathBuf;

use dee_isa::{Assembler, Reg};
use dee_store::{ArtifactKey, Store};
use dee_vm::{Trace, TraceChunkSource, TraceRecord};

fn scratch_store(tag: &str) -> (Store, PathBuf) {
    let dir = std::env::temp_dir().join(format!("dee_store_chunk_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    (Store::open(&dir).expect("open scratch store"), dir)
}

/// splitmix64 — the same mixer the store's checksum uses, here as a
/// deterministic fuzz PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A loop whose trace length scales with `n`, with a store/load pair so
/// records carry memory traffic across chunk boundaries too.
fn looped_trace(n: i32) -> (Trace, ArtifactKey) {
    let mut asm = Assembler::new();
    let r1 = Reg::new(1);
    let r2 = Reg::new(2);
    asm.li(r1, n);
    asm.label("top");
    asm.sw(r1, Reg::ZERO, 64);
    asm.lw(r2, Reg::ZERO, 64);
    asm.addi(r1, r1, -1);
    asm.bgt_label(r1, Reg::ZERO, "top");
    asm.out(r2);
    asm.halt();
    let program = asm.assemble().expect("assembles");
    let trace = dee_vm::trace_program(&program, &[], 10_000_000).expect("runs");
    let key = ArtifactKey::new("chunkfuzz", &format!("n{n}"), &program.to_listing(), &[]);
    (trace, key)
}

fn drain(source: &mut dyn TraceChunkSource, max: usize) -> (Vec<TraceRecord>, Vec<i32>) {
    let mut all = Vec::new();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let n = source.next_chunk(&mut buf, max).expect("chunk reads");
        assert!(n <= max, "overfilled chunk: {n} > {max}");
        assert_eq!(n, buf.len(), "appended count must match buffer");
        if n == 0 {
            break;
        }
        all.extend_from_slice(&buf);
    }
    let output = source.take_output().expect("output after exhaustion");
    (all, output)
}

#[test]
fn chunked_replay_is_byte_identical_at_every_pull_size() {
    let (store, dir) = scratch_store("fuzz");
    let mut rng = Rng(0xdee5_eed5);
    // Seeded lengths, biased to land near pull-size multiples so final
    // partial chunks of size 0, 1, and max-1 all occur across the sweep.
    let mut lengths: Vec<i32> = (0..6).map(|_| 1 + (rng.next() % 2_500) as i32).collect();
    lengths.push(4093); // one loop body per pull at the prime size
    for n in lengths {
        let (trace, key) = looped_trace(n);
        store.put(&key, &trace).expect("publish");
        for max in [1usize, 4093, dee_vm::DEFAULT_CHUNK_RECORDS] {
            let mut reader = store
                .open_reader(&key)
                .expect("open reader")
                .expect("published");
            assert_eq!(reader.len_hint(), Some(trace.len() as u64));
            let (records, output) = drain(&mut reader, max);
            assert_eq!(
                records.as_slice(),
                trace.records(),
                "n={n} max={max}: records drifted"
            );
            assert_eq!(
                output.as_slice(),
                trace.output(),
                "n={n} max={max}: output drifted"
            );
        }
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn empty_trace_chunks_cleanly() {
    let (store, dir) = scratch_store("empty");
    let trace = Trace::from_parts(vec![], vec![7, 8]);
    let key = ArtifactKey::new("chunkfuzz", "empty", "listing", &[]);
    store.put(&key, &trace).expect("publish empty trace");
    let mut reader = store
        .open_reader(&key)
        .expect("open reader")
        .expect("published");
    assert_eq!(reader.len_hint(), Some(0));
    let mut buf = Vec::new();
    assert_eq!(reader.next_chunk(&mut buf, 16).expect("chunk"), 0);
    assert!(buf.is_empty());
    assert_eq!(reader.take_output().expect("output"), vec![7, 8]);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn take_output_verifies_the_footer() {
    // A drained source's take_output includes the footer/EOF check, so
    // trailing garbage after the output stream is a replay error, not a
    // silent pass.
    let (store, dir) = scratch_store("footer");
    let (trace, key) = looped_trace(20);
    let path = store.put(&key, &trace).expect("publish");
    let mut bytes = std::fs::read(&path).expect("read");
    bytes.extend_from_slice(b"JUNKJUNK");
    std::fs::write(&path, &bytes).expect("rewrite");
    let mut reader = store
        .open_reader(&key)
        .expect("open reader")
        .expect("published");
    let mut buf = Vec::new();
    let result = loop {
        buf.clear();
        match reader.next_chunk(&mut buf, 64) {
            Ok(0) => break reader.take_output(),
            Ok(_) => {}
            Err(e) => break Err(e),
        }
    };
    assert!(result.is_err(), "trailing bytes must fail the stream");
    std::fs::remove_dir_all(dir).ok();
}
