//! Seeded property tests over the generator's workload space.
//!
//! Not fuzzing: the seed grid is fixed, so failures reproduce exactly and
//! the suite's cost is bounded. Each property is the contract a layer
//! above relies on:
//!
//! * (a) every generated program halts within its own declared budget —
//!   sweeps may trust `step_limit` unconditionally;
//! * (b) every generated program is clean under `dee analyze` with
//!   warnings denied — generated workloads meet the same static bar as
//!   the hand-written paper five;
//! * (c) generation is deterministic per `(spec, seed)` down to the
//!   dynamic trace — the byte-identity guarantee `genspace` extends
//!   across `--jobs`;
//! * (d) measured 2-bit-counter accuracy is monotone in the `pred` knob —
//!   the knob really is the axis the genspace sweep scans.

use dee_analyze::analyze;
use dee_gen::{generate, GenSpec};
use dee_predict::{measure_accuracy, TwoBitCounter};

/// A deliberately diverse corner-plus-center grid of specs.
fn grid() -> Vec<GenSpec> {
    [
        "default",
        "pred=0,spread=0,depth=1,calls=0,jr=0,alias=0,blocks=1,iters=1",
        "pred=1,spread=0,depth=4,calls=1,jr=1,alias=1,blocks=4,iters=8",
        "pred=0.5,spread=0.5,depth=3,calls=0.5,jr=0.5,alias=0.5,blocks=6,iters=12",
        "pred=0.9,depth=2,calls=0.8,jr=0.6,blocks=10,iters=20",
        "pred=0.2,spread=0.1,depth=1,calls=0.1,jr=0.9,alias=0.9,blocks=3,iters=32",
    ]
    .iter()
    .map(|s| GenSpec::parse(s).expect("grid specs are valid"))
    .collect()
}

#[test]
fn generated_programs_halt_within_declared_budget() {
    for (i, spec) in grid().iter().enumerate() {
        for seed in [1, 17] {
            let g = generate(spec, seed).unwrap();
            let trace = g
                .workload
                .validate()
                .unwrap_or_else(|e| panic!("grid[{i}] seed {seed}: {e}"));
            assert!(
                (trace.records().len() as u64) <= g.workload.step_limit,
                "grid[{i}] seed {seed}: {} steps over budget {}",
                trace.records().len(),
                g.workload.step_limit
            );
        }
    }
}

#[test]
fn generated_programs_are_lint_clean() {
    for (i, spec) in grid().iter().enumerate() {
        for seed in [1, 17] {
            let g = generate(spec, seed).unwrap();
            let report = analyze(&g.workload.program);
            assert!(
                report.is_clean(),
                "grid[{i}] seed {seed} ({}) not lint-clean:\n{}",
                g.name(),
                report.render_text(g.name())
            );
        }
    }
}

#[test]
fn generation_is_deterministic_down_to_the_trace() {
    for spec in grid() {
        let a = generate(&spec, 5).unwrap();
        let b = generate(&spec, 5).unwrap();
        assert_eq!(a.listing(), b.listing());
        assert_eq!(a.workload.initial_memory, b.workload.initial_memory);
        assert_eq!(a.trace.records(), b.trace.records());
        assert_eq!(a.trace.output(), b.trace.output());
    }
}

#[test]
fn two_bit_accuracy_is_monotone_in_the_pred_knob() {
    // Zero spread and jr, one long-running shape: the only predictability
    // dial left is `pred`. Average over seeds to damp stream noise, then
    // demand strictly increasing measured accuracy along the knob.
    let mut previous = 0.0f64;
    for pred in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let spec = GenSpec::parse(&format!(
            "pred={pred},spread=0,depth=1,calls=0,jr=0,alias=0.5,blocks=8,iters=256"
        ))
        .unwrap();
        let mut total = 0.0;
        let seeds = [1u64, 2, 3];
        for &seed in &seeds {
            let g = generate(&spec, seed).unwrap();
            total += measure_accuracy(&mut TwoBitCounter::new(), &g.trace).accuracy();
        }
        let accuracy = total / seeds.len() as f64;
        assert!(
            accuracy > previous,
            "accuracy {accuracy:.4} at pred={pred} not above {previous:.4}"
        );
        previous = accuracy;
    }
    // The top of the knob must reach near-perfect prediction: only the
    // loop-back and stream-determined branches remain.
    assert!(previous > 0.97, "pred=1 accuracy only {previous:.4}");
}
