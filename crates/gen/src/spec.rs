//! [`GenSpec`] — the knob vector describing a point in workload space,
//! with a canonical `key=value` text form used by the CLI, by CSV columns,
//! and by the header comment embedded in generated listings.

use std::fmt;

/// Why a spec string or knob vector was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A point in workload space: each knob is independently controllable.
///
/// The canonical text form is `key=value` pairs joined by commas (the CLI
/// spec argument) or spaces (the listing header); [`GenSpec::parse`]
/// accepts both, with unspecified knobs keeping their defaults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenSpec {
    /// Branch-predictability knob in `[0, 1]`: each branch site's
    /// taken-bias is `0.5 + 0.5·pred` (polarity randomized per site), so
    /// `0` yields coin-flip branches and `1` fully determined ones.
    pub pred: f64,
    /// Half-width of the per-site uniform jitter applied to the bias, so
    /// sites within one program differ in predictability.
    pub spread: f64,
    /// Loop-nest depth (1..=4): level 1 is the `iters` outer loop, deeper
    /// levels add short counted loops around the branch-block body.
    pub depth: u32,
    /// Call density in `[0, 1]`: probability a branch block calls one of
    /// the generated leaf functions.
    pub calls: f64,
    /// Indirect-jump density in `[0, 1]`: probability a branch block
    /// dispatches through a register-indirect `jr` jump table.
    pub jr: f64,
    /// Memory-aliasing degree in `[0, 1]`: `0` spreads loads/stores over
    /// the whole workspace, `1` collapses them onto a handful of words.
    pub alias: f64,
    /// Branch-block sites in the innermost loop body (1..=32).
    pub blocks: u32,
    /// Outer-loop trip count (1..=1_048_576); the dynamic-length dial.
    pub iters: u32,
}

impl Default for GenSpec {
    fn default() -> Self {
        GenSpec {
            pred: 0.85,
            spread: 0.05,
            depth: 2,
            calls: 0.25,
            jr: 0.15,
            alias: 0.5,
            blocks: 8,
            iters: 64,
        }
    }
}

impl GenSpec {
    /// Parses `key=value` pairs separated by commas and/or whitespace;
    /// missing knobs default. `""` and `"default"` give the default spec.
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, malformed values, and out-of-range knobs.
    pub fn parse(text: &str) -> Result<GenSpec, SpecError> {
        let mut spec = GenSpec::default();
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed == "default" {
            return Ok(spec);
        }
        for pair in trimmed.split([',', ' ']).filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| SpecError(format!("`{pair}` is not a key=value pair")))?;
            let bad = |what: &str| SpecError(format!("bad {what} `{value}` for `{key}`"));
            match key {
                "pred" => spec.pred = value.parse().map_err(|_| bad("number"))?,
                "spread" => spec.spread = value.parse().map_err(|_| bad("number"))?,
                "depth" => spec.depth = value.parse().map_err(|_| bad("count"))?,
                "calls" => spec.calls = value.parse().map_err(|_| bad("number"))?,
                "jr" => spec.jr = value.parse().map_err(|_| bad("number"))?,
                "alias" => spec.alias = value.parse().map_err(|_| bad("number"))?,
                "blocks" => spec.blocks = value.parse().map_err(|_| bad("count"))?,
                "iters" => spec.iters = value.parse().map_err(|_| bad("count"))?,
                other => {
                    return Err(SpecError(format!(
                    "unknown knob `{other}` (knobs: pred spread depth calls jr alias blocks iters)"
                )))
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every knob's range.
    ///
    /// # Errors
    ///
    /// Describes the first out-of-range knob.
    pub fn validate(&self) -> Result<(), SpecError> {
        let unit = |name: &str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(SpecError(format!("`{name}` must be in [0, 1], got {v}")))
            }
        };
        unit("pred", self.pred)?;
        unit("calls", self.calls)?;
        unit("jr", self.jr)?;
        unit("alias", self.alias)?;
        if !(0.0..=0.5).contains(&self.spread) {
            return Err(SpecError(format!(
                "`spread` must be in [0, 0.5], got {}",
                self.spread
            )));
        }
        if !(1..=4).contains(&self.depth) {
            return Err(SpecError(format!(
                "`depth` must be in 1..=4, got {}",
                self.depth
            )));
        }
        if !(1..=32).contains(&self.blocks) {
            return Err(SpecError(format!(
                "`blocks` must be in 1..=32, got {}",
                self.blocks
            )));
        }
        if !(1..=1_048_576).contains(&self.iters) {
            return Err(SpecError(format!(
                "`iters` must be in 1..=1048576, got {}",
                self.iters
            )));
        }
        Ok(())
    }

    /// The canonical comma-joined form; `GenSpec::parse` round-trips it.
    #[must_use]
    pub fn canonical(&self) -> String {
        self.pairs().join(",")
    }

    /// The `key=value` pairs in canonical knob order.
    #[must_use]
    pub fn pairs(&self) -> Vec<String> {
        vec![
            format!("pred={}", self.pred),
            format!("spread={}", self.spread),
            format!("depth={}", self.depth),
            format!("calls={}", self.calls),
            format!("jr={}", self.jr),
            format!("alias={}", self.alias),
            format!("blocks={}", self.blocks),
            format!("iters={}", self.iters),
        ]
    }

    /// CSV header columns matching [`GenSpec::csv_cells`] — every
    /// gen-derived table carries these so each row is regenerable.
    #[must_use]
    pub fn csv_columns() -> [&'static str; 8] {
        [
            "pred", "spread", "depth", "calls", "jr", "alias", "blocks", "iters",
        ]
    }

    /// Knob values as CSV cells, in [`GenSpec::csv_columns`] order.
    #[must_use]
    pub fn csv_cells(&self) -> Vec<String> {
        vec![
            format!("{}", self.pred),
            format!("{}", self.spread),
            format!("{}", self.depth),
            format!("{}", self.calls),
            format!("{}", self.jr),
            format!("{}", self.alias),
            format!("{}", self.blocks),
            format!("{}", self.iters),
        ]
    }

    /// A short stable digest of the canonical form (FNV-1a), used in
    /// generated workload names.
    #[must_use]
    pub fn digest(&self) -> u32 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.canonical().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash ^ (hash >> 32)) as u32
    }
}

impl fmt::Display for GenSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canonical())
    }
}

/// The header-comment tag opening every generated listing.
pub const HEADER_TAG: &str = "# dee-gen v1";

/// Renders the reproducibility header: spec + seed as comment lines that
/// `dee_isa::parse` skips, so a generated listing round-trips through the
/// stock parser while still carrying everything needed to regenerate it.
#[must_use]
pub fn render_header(spec: &GenSpec, seed: u64) -> String {
    format!("{HEADER_TAG} seed={seed} {}\n", spec.pairs().join(" "))
}

/// Recovers `(spec, seed)` from a generated listing (or any text holding
/// its header line).
///
/// # Errors
///
/// Fails when no `# dee-gen v1` line is present or its fields are
/// malformed.
pub fn parse_header(text: &str) -> Result<(GenSpec, u64), SpecError> {
    let line = text
        .lines()
        .find_map(|l| l.trim().strip_prefix(HEADER_TAG))
        .ok_or_else(|| SpecError(format!("no `{HEADER_TAG}` header line found")))?;
    let mut seed: Option<u64> = None;
    let mut knobs: Vec<&str> = Vec::new();
    for token in line.split_whitespace() {
        if let Some(value) = token.strip_prefix("seed=") {
            seed = Some(
                value
                    .parse()
                    .map_err(|_| SpecError(format!("bad seed `{value}`")))?,
            );
        } else {
            knobs.push(token);
        }
    }
    let seed = seed.ok_or_else(|| SpecError("header carries no seed".to_string()))?;
    let spec = GenSpec::parse(&knobs.join(","))?;
    Ok((spec, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_through_canonical_form() {
        let spec = GenSpec::default();
        assert_eq!(GenSpec::parse(&spec.canonical()).unwrap(), spec);
        assert_eq!(GenSpec::parse("").unwrap(), spec);
        assert_eq!(GenSpec::parse("default").unwrap(), spec);
    }

    #[test]
    fn partial_specs_keep_defaults() {
        let spec = GenSpec::parse("pred=0.95,depth=1").unwrap();
        assert_eq!(spec.pred, 0.95);
        assert_eq!(spec.depth, 1);
        assert_eq!(spec.blocks, GenSpec::default().blocks);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(GenSpec::parse("warp=1").is_err());
        assert!(GenSpec::parse("pred").is_err());
        assert!(GenSpec::parse("pred=two").is_err());
        assert!(GenSpec::parse("pred=1.5").is_err());
        assert!(GenSpec::parse("depth=0").is_err());
        assert!(GenSpec::parse("blocks=99").is_err());
        assert!(GenSpec::parse("spread=0.9").is_err());
    }

    #[test]
    fn header_round_trips() {
        let spec = GenSpec::parse("pred=0.7,jr=0.3,iters=128").unwrap();
        let header = render_header(&spec, 42);
        assert!(header.starts_with(HEADER_TAG));
        let listing = format!("{header}    0: li r1, 3\n    1: halt\n");
        let (back, seed) = parse_header(&listing).unwrap();
        assert_eq!(back, spec);
        assert_eq!(seed, 42);
    }

    #[test]
    fn header_requires_tag_and_seed() {
        assert!(parse_header("li r1, 3\nhalt\n").is_err());
        assert!(parse_header("# dee-gen v1 pred=0.5\n").is_err());
    }

    #[test]
    fn digest_separates_nearby_specs() {
        let a = GenSpec::parse("pred=0.7").unwrap().digest();
        let b = GenSpec::parse("pred=0.71").unwrap().digest();
        assert_ne!(a, b);
        assert_eq!(a, GenSpec::parse("pred=0.7").unwrap().digest());
    }
}
