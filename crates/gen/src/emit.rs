//! The program emitter: turns a `(GenSpec, seed)` pair into a toy-ISA
//! program plus per-site stream descriptors.
//!
//! ## Knob → mechanism mapping
//!
//! * **pred/spread** — every branch site reads a word from its own
//!   precomputed decision stream in data memory and branches on it; the
//!   stream is Bernoulli with taken-bias `0.5 + 0.5·(pred ± jitter)`
//!   (polarity randomized per site). A 2-bit counter's accuracy on an iid
//!   stream is a monotone function of that bias, which is what makes the
//!   knob an *axis*: `pred=0` is a coin flip (≈50% measured), `pred=1` is
//!   fully determined (≈100%).
//! * **depth** — counted loops nested around the block body; loop-back
//!   branches add the highly-predictable population every real program
//!   has.
//! * **calls** — blocks append `jal` calls to generated leaf functions.
//! * **jr** — blocks become register-indirect dispatches: `jr` into a
//!   ladder of always-taken branches, one per way. The ladder keeps every
//!   way statically reachable (the analyzer gives `jr` only an exit edge);
//!   a `beq way, r0, ladder` guard anchors the ladder itself and handles
//!   way 0, exactly like the `synacor` interpreter's dispatch.
//! * **alias** — loads/stores hash into a workspace window whose size
//!   shrinks as the knob grows: `alias=0` spreads over 4096 words,
//!   `alias=1` collapses onto one.
//!
//! The emitter is two-pass only to materialize dispatch-table addresses
//! into `li` instructions: pass 1 runs with placeholder zeros and records
//! the table labels' addresses, pass 2 re-runs with them embedded. Both
//! passes draw the same PRNG sequence, so the layout is identical.

use dee_isa::{Assembler, Program, Reg};

use crate::spec::GenSpec;
use crate::Rng;

/// Words per site decision stream (power of two; indexed mod this).
pub const STREAM: usize = 256;
/// Word address of the first decision stream.
pub const RAND_BASE: i32 = 4096;
/// Word address of the load/store workspace.
pub const DATA_BASE: i32 = 16384;
/// Workspace size in words; the aliasing knob shrinks the active window.
pub const WORKSPACE: i32 = 4096;
/// Ways per `jr` dispatch site.
pub const JR_WAYS: usize = 4;

/// How one site's decision stream is distributed.
#[derive(Clone, Copy, Debug)]
pub enum SiteKind {
    /// A conditional-branch site: stream words are 0/1 with `P(1) =
    /// taken_bias`.
    Branch {
        /// Probability a stream word is 1 (branch taken).
        taken_bias: f64,
    },
    /// A `jr` dispatch site: stream words are way indices in
    /// `0..JR_WAYS`, concentrated on `dominant` with probability
    /// `dominant_p` and uniform otherwise.
    Dispatch {
        /// The way that receives the concentrated probability mass.
        dominant: usize,
        /// Probability mass on the dominant way.
        dominant_p: f64,
    },
}

/// One generated branch/dispatch site and where its stream lives.
#[derive(Clone, Copy, Debug)]
pub struct Site {
    /// Stream distribution.
    pub kind: SiteKind,
    /// Absolute word address of the site's stream segment.
    pub stream_base: i32,
}

/// The emitter's output for one pass.
pub struct Emitted {
    /// The assembled program.
    pub program: Program,
    /// Dispatch-table addresses found at this pass's layout, in site
    /// order (one entry per `Dispatch` site).
    pub tables: Vec<u32>,
    /// Site descriptors, block order.
    pub sites: Vec<Site>,
    /// Total innermost-body executions (`iters · Π inner trips`).
    pub inner_iterations: u64,
}

// Host register map (r0 and r29..r31 left to their ABI roles).
const COUNTERS: [u8; 4] = [1, 2, 3, 4];
const R_K: u8 = 5; // stream index
const R_H: u8 = 6; // address hash
const R_HADDR: u8 = 7; // workspace address
const R_V: u8 = 8; // stream value
const R_T: u8 = 9; // scratch
const ACCS: [u8; 4] = [10, 11, 12, 13];
const R_STREAM: u8 = 14; // RAND_BASE
const R_DATA: u8 = 15; // DATA_BASE
const R_A0: u8 = 16;
const R_A1: u8 = 17;
const R_RV: u8 = 18;
const R_JT: u8 = 19; // jr target
const R_MVAL: u8 = 20; // loaded value
const R_T2: u8 = 21; // block-local value chain

/// Leaf-function count the call knob draws from.
const NFUNCS: usize = 3;

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Emits a block-local value chain: seed a temp from the stream value,
/// mix 1–3 ops over it, and fold it into one accumulator with a single
/// op. Keeping the *per-accumulator* serial chain this thin is what gives
/// generated programs real dataflow ILP — iterations overlap freely off
/// the thin `k` counter chain, so branch (mis)prediction, not a
/// register-dependence chain, bounds the achievable speedup.
fn fill(asm: &mut Assembler, rng: &mut Rng) {
    let t2 = Reg::new(R_T2);
    asm.mv(t2, Reg::new(R_V));
    for _ in 0..=rng.below(3) {
        match rng.below(5) {
            0 => asm.add(t2, t2, Reg::new(R_K)),
            1 => asm.xor(t2, t2, Reg::new(R_H)),
            2 => asm.addi(t2, t2, rng.below(129) as i32 - 64),
            3 => asm.muli(t2, t2, (2 * rng.below(15) + 3) as i32),
            _ => asm.xori(t2, t2, rng.below(1 << 12) as i32),
        };
    }
    let acc = Reg::new(ACCS[rng.below(4)]);
    asm.xor(acc, acc, t2);
}

/// Computes this site's workspace address into `R_HADDR`, hashing the
/// iteration counter rather than chaining a global hash — the hash is
/// per-block so memory addresses, like the value chains, hang off the
/// thin `k` chain instead of serializing the whole run.
fn workspace_addr(asm: &mut Assembler, rng: &mut Rng, region: i32) {
    let h = Reg::new(R_H);
    asm.muli(h, Reg::new(R_K), (2 * rng.below(4096) + 21) as i32);
    asm.addi(h, h, (2 * rng.below(512) + 1) as i32);
    asm.andi(h, h, 16383); // keep the hash nonnegative for remi
    asm.remi(Reg::new(R_T), h, region);
    asm.add(Reg::new(R_HADDR), Reg::new(R_DATA), Reg::new(R_T));
}

/// One emitter pass. `tables` holds dispatch-table addresses from a prior
/// pass (zeros are emitted where missing). The PRNG sequence depends only
/// on `(spec, seed)`, so passes lay out identically.
pub fn emit(spec: &GenSpec, seed: u64, tables: &[u32]) -> Emitted {
    let mut rng = Rng::new(seed ^ 0x6465_655f_6765_6e21); // program stream
    let mut asm = Assembler::new();
    let zero = Reg::ZERO;
    let (k, h, v, t) = (Reg::new(R_K), Reg::new(R_H), Reg::new(R_V), Reg::new(R_T));
    let region = ((1.0 - spec.alias) * f64::from(WORKSPACE)).round().max(1.0) as i32;

    // Init: constants, accumulator seeds, hash seed.
    asm.li(Reg::new(R_STREAM), RAND_BASE);
    asm.li(Reg::new(R_DATA), DATA_BASE);
    asm.li(k, 0);
    asm.li(h, rng.below(16384) as i32);
    for acc in ACCS {
        asm.li(Reg::new(acc), rng.below(1 << 20) as i32);
    }
    // Fold the hash seed in immediately: every later `h` definition is
    // per-block (off the `k` counter), so without this read the seed
    // would be a dead store in shapes whose first block never reads `h`.
    asm.xor(Reg::new(ACCS[0]), Reg::new(ACCS[0]), h);

    // Loop nest: level 0 is the iters-controlled outer loop; deeper
    // levels are short counted loops re-armed per enclosing iteration.
    let mut trips: Vec<u32> = vec![spec.iters];
    for _ in 1..spec.depth {
        trips.push(2 + rng.below(3) as u32);
    }
    let inner_iterations: u64 = trips.iter().map(|&t| u64::from(t)).product();
    for (level, &count) in trips.iter().enumerate() {
        let counter = Reg::new(COUNTERS[level]);
        asm.li(counter, count as i32);
        asm.label(&format!("loop{level}"));
    }

    // Innermost body: bump the stream cursor, then the block sites.
    asm.addi(k, k, 1);
    asm.andi(k, k, STREAM as i32 - 1);

    let mut sites: Vec<Site> = Vec::new();
    let mut found_tables: Vec<u32> = Vec::new();
    let mut used_fns: Vec<bool> = vec![false; NFUNCS];
    for block in 0..spec.blocks as usize {
        let stream_base = RAND_BASE + (block * STREAM) as i32;
        // Load this site's decision word: v = mem[stream_base + k].
        asm.addi(t, Reg::new(R_STREAM), (block * STREAM) as i32);
        asm.add(t, t, k);
        asm.lw(v, t, 0);

        let jitter = (rng.f64() * 2.0 - 1.0) * spec.spread;
        let strength = clamp01(spec.pred + jitter);
        if rng.chance(spec.jr) {
            // Dispatch site: jr through a ladder of always-taken
            // branches; the beq guard anchors static reachability and
            // handles way 0 (see module docs).
            let dominant = rng.below(JR_WAYS);
            let dominant_p = 1.0 / JR_WAYS as f64 + (1.0 - 1.0 / JR_WAYS as f64) * strength;
            sites.push(Site {
                kind: SiteKind::Dispatch {
                    dominant,
                    dominant_p,
                },
                stream_base,
            });
            let table = tables.get(found_tables.len()).copied().unwrap_or(0);
            let jt = Reg::new(R_JT);
            asm.li(jt, table as i32);
            asm.add(jt, jt, v);
            asm.beq_label(v, zero, &format!("b{block}_tbl"));
            asm.jr(jt);
            found_tables.push(asm.here());
            asm.label(&format!("b{block}_tbl"));
            for way in 0..JR_WAYS {
                asm.bge_label(zero, zero, &format!("b{block}_w{way}"));
            }
            for way in 0..JR_WAYS {
                asm.label(&format!("b{block}_w{way}"));
                fill(&mut asm, &mut rng);
                if way == rng.below(JR_WAYS) {
                    // One way per site carries the block's memory traffic.
                    workspace_addr(&mut asm, &mut rng, region);
                    let acc = Reg::new(ACCS[rng.below(4)]);
                    asm.lw(Reg::new(R_MVAL), Reg::new(R_HADDR), 0);
                    asm.add(acc, acc, Reg::new(R_MVAL));
                    asm.sw(acc, Reg::new(R_HADDR), 0);
                }
                if way + 1 < JR_WAYS {
                    asm.j_label(&format!("b{block}_end"));
                }
            }
        } else {
            // Branch site: taken-or-not on the biased decision stream,
            // distinct filler on each arm, a load on one and a store on
            // the other.
            let taken_bias = {
                let bias = 0.5 + 0.5 * strength;
                if rng.chance(0.5) {
                    bias
                } else {
                    1.0 - bias
                }
            };
            sites.push(Site {
                kind: SiteKind::Branch { taken_bias },
                stream_base,
            });
            asm.bne_label(v, zero, &format!("b{block}_taken"));
            fill(&mut asm, &mut rng);
            let load_on_fall = rng.chance(0.5);
            workspace_addr(&mut asm, &mut rng, region);
            let acc = Reg::new(ACCS[rng.below(4)]);
            if load_on_fall {
                asm.lw(Reg::new(R_MVAL), Reg::new(R_HADDR), 0);
                asm.add(acc, acc, Reg::new(R_MVAL));
            } else {
                asm.sw(acc, Reg::new(R_HADDR), 0);
            }
            asm.j_label(&format!("b{block}_end"));
            asm.label(&format!("b{block}_taken"));
            fill(&mut asm, &mut rng);
            workspace_addr(&mut asm, &mut rng, region);
            let acc = Reg::new(ACCS[rng.below(4)]);
            if load_on_fall {
                asm.sw(acc, Reg::new(R_HADDR), 0);
            } else {
                asm.lw(Reg::new(R_MVAL), Reg::new(R_HADDR), 0);
                asm.add(acc, acc, Reg::new(R_MVAL));
            }
        }
        asm.label(&format!("b{block}_end"));

        // Call tail, independent of block kind so the knobs compose.
        if rng.chance(spec.calls) {
            let which = rng.below(NFUNCS);
            used_fns[which] = true;
            asm.mv(Reg::new(R_A0), Reg::new(ACCS[rng.below(4)]));
            asm.mv(Reg::new(R_A1), h);
            asm.call_label(&format!("fn{which}"));
            let acc = Reg::new(ACCS[rng.below(4)]);
            asm.xor(acc, acc, Reg::new(R_RV));
        }
    }

    // Close the nest, innermost first.
    for (level, _) in trips.iter().enumerate().rev() {
        let counter = Reg::new(COUNTERS[level]);
        asm.addi(counter, counter, -1);
        asm.bgt_label(counter, zero, &format!("loop{level}"));
    }

    // Observable exit state: accumulators and the address hash, so every
    // filler chain and workspace access is live.
    for acc in ACCS {
        asm.out(Reg::new(acc));
    }
    asm.out(h);
    asm.halt();

    // Leaf functions, only those actually called (an uncalled function
    // would be statically unreachable — a DEE-W001 lint).
    for (which, used) in used_fns.iter().enumerate() {
        if !used {
            continue;
        }
        let rv = Reg::new(R_RV);
        asm.label(&format!("fn{which}"));
        asm.add(rv, Reg::new(R_A0), Reg::new(R_A1));
        asm.muli(rv, rv, (2 * rng.below(31) + 3) as i32);
        asm.xori(rv, rv, rng.below(1 << 16) as i32);
        asm.ret();
    }

    let program = asm.assemble().expect("generated program assembles");
    Emitted {
        program,
        tables: found_tables,
        sites,
        inner_iterations,
    }
}

/// Builds the initial-memory image: one decision stream per site, drawn
/// from a data-PRNG stream independent of the layout PRNG.
#[must_use]
pub fn build_memory(sites: &[Site], seed: u64) -> Vec<i32> {
    let mut rng = Rng::new(seed ^ 0x6461_7461_5f31_3337); // data stream
    let len = RAND_BASE as usize + sites.len() * STREAM;
    let mut memory = vec![0i32; len];
    for site in sites {
        let base = site.stream_base as usize;
        for word in &mut memory[base..base + STREAM] {
            *word = match site.kind {
                SiteKind::Branch { taken_bias } => i32::from(rng.f64() < taken_bias),
                SiteKind::Dispatch {
                    dominant,
                    dominant_p,
                } => {
                    if rng.f64() < dominant_p {
                        dominant as i32
                    } else {
                        rng.below(JR_WAYS) as i32
                    }
                }
            };
        }
    }
    memory
}
