//! # dee-gen — seeded workload-space generator
//!
//! The paper's five workload models sit in a narrow band of branch
//! predictability (85–95%), which is exactly where DEE's advantage over
//! single-path speculation is claimed to peak. To *map* that advantage as
//! a function of predictability — rather than sample it at five points —
//! this crate generates synthetic toy-ISA programs whose branch behavior,
//! control structure, and memory behavior are independently dialable:
//!
//! * [`GenSpec`] is the knob vector (predictability, per-site spread,
//!   loop-nest depth, call density, indirect-jump density, aliasing
//!   degree, block count, trip count) with a canonical `key=value` text
//!   form.
//! * [`generate`] turns `(spec, seed)` into a [`Generated`] program:
//!   deterministic, validated against its own reference execution, and
//!   wrapped in a [`dee_workloads::Workload`] so every downstream layer
//!   (trace capture, the artifact store, `dee analyze`, the sweep
//!   binaries) treats it exactly like the paper five.
//! * Every listing rendered by [`Generated::listing`] opens with a
//!   `# dee-gen v1 seed=… pred=… …` comment header; [`from_listing`]
//!   regenerates the identical program from that header alone, so any
//!   file (or CSV row echoing the spec columns) is self-reproducing.
//!
//! Determinism contract: the same `(spec, seed)` yields byte-identical
//! listings, memory images, and traces on every host — the generator uses
//! its own xorshift64* PRNG and no platform-dependent state.

pub mod emit;
pub mod spec;

pub use spec::{parse_header, render_header, GenSpec, SpecError, HEADER_TAG};

use dee_vm::{trace_program_with, Engine, Trace};
use dee_workloads::{Workload, WorkloadRegistry};

use std::fmt;

/// Why generation failed.
#[derive(Clone, Debug)]
pub enum GenError {
    /// The spec was malformed or out of range.
    Spec(SpecError),
    /// The generated program failed its own reference execution — a
    /// generator bug, never an expected outcome.
    Runtime(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::Spec(e) => write!(f, "{e}"),
            GenError::Runtime(e) => write!(f, "generated program failed to run: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<SpecError> for GenError {
    fn from(e: SpecError) -> Self {
        GenError::Spec(e)
    }
}

/// xorshift64* PRNG — the generator's only randomness source, seeded
/// explicitly so every draw is reproducible.
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Rng {
        // Avoid the all-zero fixed point while keeping distinct seeds
        // distinct.
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n` (`n > 0`; modulo bias is irrelevant here).
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw.
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

/// A generated program plus everything needed to reproduce and run it.
pub struct Generated {
    /// The knob vector it was generated from.
    pub spec: GenSpec,
    /// The PRNG seed.
    pub seed: u64,
    /// The program as a first-class workload (name, program, memory
    /// image, expected output from the generation-time reference run, and
    /// a sound step budget).
    pub workload: Workload,
    /// The reference trace captured while validating generation; callers
    /// may reuse it instead of re-running the VM.
    pub trace: Trace,
    /// Total innermost-body executions (outer trips × inner loop trips).
    pub inner_iterations: u64,
}

impl Generated {
    /// The workload name: `gen-<spec digest>-s<seed>`, content-derived so
    /// distinct points in workload space never collide in the store.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.workload.name
    }

    /// The program listing prefixed with the reproducibility header;
    /// parseable by `dee_isa::parse_program` (the header is a comment)
    /// and by [`from_listing`] (which regenerates the whole workload).
    #[must_use]
    pub fn listing(&self) -> String {
        format!(
            "{}{}",
            render_header(&self.spec, self.seed),
            self.workload.program.to_listing()
        )
    }

    /// Registers this program's `(spec, seed)` as a constructor under its
    /// generated name, so suites can build it like any built-in workload.
    /// Scale is ignored: generated programs carry their size in `iters`.
    pub fn register(&self, registry: &mut WorkloadRegistry) {
        let spec = self.spec;
        let seed = self.seed;
        registry.register(self.name(), move |_scale| {
            generate(&spec, seed)
                .expect("a spec+seed that generated once generates again")
                .workload
        });
    }
}

/// The workload name for a `(spec, seed)` point without generating it.
#[must_use]
pub fn workload_name(spec: &GenSpec, seed: u64) -> String {
    format!("gen-{:08x}-s{seed}", spec.digest())
}

/// Generates the program for `(spec, seed)`: two emitter passes to
/// materialize dispatch-table addresses, decision-stream memory image,
/// then one reference execution to capture the expected output and prove
/// the program halts within its declared budget.
///
/// # Errors
///
/// [`GenError::Spec`] for out-of-range knobs; [`GenError::Runtime`] if
/// the emitted program faults or overruns its budget (a generator bug).
pub fn generate(spec: &GenSpec, seed: u64) -> Result<Generated, GenError> {
    generate_with(spec, seed, Engine::default())
}

/// [`generate`] with an explicit trace-capture engine. Both engines
/// produce byte-identical traces, so this only changes generation speed.
///
/// # Errors
///
/// Same contract as [`generate`].
pub fn generate_with(spec: &GenSpec, seed: u64, engine: Engine) -> Result<Generated, GenError> {
    spec.validate()?;
    let probe = emit::emit(spec, seed, &[]);
    let emitted = emit::emit(spec, seed, &probe.tables);
    // Both passes draw the same PRNG sequence and `li` is one
    // instruction regardless of value, so the layout cannot move.
    assert_eq!(
        emitted.tables, probe.tables,
        "dispatch tables moved between emitter passes"
    );
    let initial_memory = emit::build_memory(&emitted.sites, seed);

    // Sound budget: every innermost iteration executes at most the whole
    // program once (it executes far less), plus setup slack.
    let step_limit = 2 * (emitted.program.len() as u64 + 8) * (emitted.inner_iterations + 4) + 1024;

    let trace = trace_program_with(engine, &emitted.program, &initial_memory, step_limit)
        .map_err(|e| GenError::Runtime(format!("{} (seed {seed}): {e}", spec.canonical())))?;
    let workload = Workload {
        name: workload_name(spec, seed),
        program: emitted.program,
        initial_memory,
        expected_output: trace.output().to_vec(),
        step_limit,
    };
    Ok(Generated {
        spec: *spec,
        seed,
        workload,
        trace,
        inner_iterations: emitted.inner_iterations,
    })
}

/// Regenerates a program from the `# dee-gen v1` header inside `text`
/// (typically a listing produced by [`Generated::listing`]).
///
/// # Errors
///
/// Header-parse failures and any [`generate`] error.
pub fn from_listing(text: &str) -> Result<Generated, GenError> {
    let (spec, seed) = parse_header(text)?;
    generate(&spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_generates_and_validates() {
        let g = generate(&GenSpec::default(), 1).unwrap();
        let trace = g.workload.validate().expect("generated workload runs");
        assert_eq!(trace.output(), g.trace.output());
        assert!(g.workload.expected_output.len() == 5);
    }

    #[test]
    fn listing_header_regenerates_identical_program() {
        let spec = GenSpec::parse("pred=0.7,jr=0.4,calls=0.5,depth=3,iters=16").unwrap();
        let g = generate(&spec, 7).unwrap();
        let back = from_listing(&g.listing()).unwrap();
        assert_eq!(back.listing(), g.listing());
        assert_eq!(back.workload.initial_memory, g.workload.initial_memory);
        assert_eq!(back.workload.expected_output, g.workload.expected_output);
    }

    #[test]
    fn listing_parses_with_stock_parser() {
        let g = generate(&GenSpec::default(), 3).unwrap();
        let parsed = dee_isa::parse::parse_program(&g.listing()).expect("header is a comment");
        assert_eq!(parsed.len(), g.workload.program.len());
    }

    #[test]
    fn seeds_differentiate_programs() {
        let spec = GenSpec::default();
        let a = generate(&spec, 1).unwrap();
        let b = generate(&spec, 2).unwrap();
        assert_ne!(a.name(), b.name());
        assert_ne!(
            a.workload.program.to_listing(),
            b.workload.program.to_listing()
        );
    }

    #[test]
    fn registry_roundtrip_builds_same_workload() {
        let mut registry = WorkloadRegistry::new();
        let g = generate(&GenSpec::default(), 9).unwrap();
        g.register(&mut registry);
        let built = registry
            .build(g.name(), dee_workloads::Scale::Tiny)
            .expect("registered");
        assert_eq!(built.expected_output, g.workload.expected_output);
        assert_eq!(built.program.to_listing(), g.workload.program.to_listing());
    }
}
