//! `dee-serve` — simulation-as-a-service for the DEE stack.
//!
//! A resident, multi-threaded HTTP server that keeps prepared traces hot
//! across requests. Parameter sweeps (many models × many `E_T` values
//! over few workloads) pay the expensive predictor replay and
//! post-dominator analysis once per `(program, memory, predictor)` and
//! answer every subsequent query from the sharded LRU cache.
//!
//! Everything is hand-rolled on `std` — the JSON codec, the HTTP/1.1
//! subset, the bounded MPMC queue, the metrics registry — because the
//! workspace builds fully offline with no external crates.
//!
//! ```no_run
//! use dee_serve::{Server, ServerConfig};
//!
//! let server = Server::spawn(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.shutdown();
//! ```

#![deny(unsafe_code)]

pub mod api;
pub mod cache;
pub mod faults;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod signal;
pub mod stream;

pub use api::{
    handle_levo, handle_simulate, handle_tree, levo_json, outcome_json, parse_batch,
    run_batch_cell, tree_json, ApiError, BatchCell,
};
pub use cache::{CacheKey, PreparedCache, PreparedEntry};
pub use faults::{FaultPlan, FaultSite, FaultSpec, Injected};
pub use json::Json;
pub use metrics::Metrics;
pub use server::{Server, ServerConfig};
pub use stream::GuardedStream;
