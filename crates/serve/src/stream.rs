//! A connection wrapper that enforces whole-request I/O budgets and
//! hosts the socket-level fault-injection sites.
//!
//! The seed server set a 5-second timeout *per `read` call*, which a
//! slow-loris client defeats by trickling one byte at a time — every
//! byte resets the clock, so one connection can hold a worker slot
//! forever. [`GuardedStream`] instead fixes a wall-clock deadline when
//! the connection is picked up and, before every syscall, re-arms the
//! socket timeout with the *remaining* budget. Total time across all
//! reads (and, independently, all writes) is bounded no matter how the
//! client paces its bytes; the write budget starts at the first write,
//! so a client that wastes the entire read budget still gets its `408`.
//! `set_read_timeout` failures are propagated, not discarded.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::faults::{FaultPlan, FaultSite, Injected};

/// A [`TcpStream`] with per-direction wall-clock budgets and fault
/// hooks at [`FaultSite::SocketRead`] / [`FaultSite::SocketWrite`].
pub struct GuardedStream {
    inner: TcpStream,
    read_deadline: Instant,
    write_budget: Duration,
    /// Armed lazily at the first write: the write budget covers the
    /// *response* phase. If it started with the read budget, a client
    /// that burned the whole read budget would leave no time to send
    /// the 408 that tells it so.
    write_deadline: Option<Instant>,
    faults: Arc<FaultPlan>,
}

fn budget_error(direction: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::TimedOut,
        format!("whole-request {direction} budget exhausted"),
    )
}

fn injected_error(site: FaultSite) -> io::Error {
    io::Error::other(format!("injected fault: error at {}", site.name()))
}

impl GuardedStream {
    /// Wraps `stream`, starting the read budget now; the write budget
    /// starts at the first write.
    ///
    /// # Errors
    ///
    /// Propagates `set_read_timeout`/`set_write_timeout` failures (the
    /// seed discarded them; a socket that cannot take timeouts cannot be
    /// served within a budget).
    pub fn new(
        stream: TcpStream,
        read_budget: Duration,
        write_budget: Duration,
        faults: Arc<FaultPlan>,
    ) -> io::Result<GuardedStream> {
        stream.set_read_timeout(Some(read_budget.max(Duration::from_millis(1))))?;
        stream.set_write_timeout(Some(write_budget.max(Duration::from_millis(1))))?;
        Ok(GuardedStream {
            inner: stream,
            read_deadline: Instant::now() + read_budget,
            write_budget,
            write_deadline: None,
            faults,
        })
    }

    /// Remaining time before `deadline`, or a `TimedOut` error.
    fn remaining(deadline: Instant, direction: &str) -> io::Result<Duration> {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            Err(budget_error(direction))
        } else {
            // `set_read_timeout` rejects zero durations; sub-millisecond
            // remainders round up to the minimum representable timeout.
            Ok(left.max(Duration::from_millis(1)))
        }
    }

    /// Unwraps back to the raw stream (for lingering close).
    #[must_use]
    pub fn into_inner(self) -> TcpStream {
        self.inner
    }
}

impl Read for GuardedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let cap = match self.faults.trip(FaultSite::SocketRead) {
            Some(Injected::Error) => return Err(injected_error(FaultSite::SocketRead)),
            Some(Injected::ShortRead) => 1.min(buf.len()),
            None => buf.len(),
        };
        let left = Self::remaining(self.read_deadline, "read")?;
        self.inner.set_read_timeout(Some(left))?;
        match self.inner.read(&mut buf[..cap]) {
            // A timeout surfaces as WouldBlock on Unix; normalize so
            // callers see one budget-exhausted kind.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Err(budget_error("read")),
            other => other,
        }
    }
}

impl Write for GuardedStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.faults.trip(FaultSite::SocketWrite) {
            Some(Injected::Error) => return Err(injected_error(FaultSite::SocketWrite)),
            Some(Injected::ShortRead) | None => {}
        }
        let deadline = match self.write_deadline {
            Some(deadline) => deadline,
            None => {
                let deadline = Instant::now() + self.write_budget;
                self.write_deadline = Some(deadline);
                deadline
            }
        };
        let left = Self::remaining(deadline, "write")?;
        self.inner.set_write_timeout(Some(left))?;
        match self.inner.write(buf) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Err(budget_error("write")),
            other => other,
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn read_budget_bounds_a_trickling_peer() {
        let (client, server) = pair();
        let mut guarded = GuardedStream::new(
            server,
            Duration::from_millis(150),
            Duration::from_secs(5),
            Arc::new(FaultPlan::inert()),
        )
        .unwrap();
        // Trickle one byte, then go silent: the first read succeeds, the
        // second must fail once the *total* budget is spent — not per-read.
        let trickler = std::thread::spawn(move || {
            let mut client = client;
            client.write_all(b"x").unwrap();
            std::thread::sleep(Duration::from_millis(400));
            client
        });
        let started = Instant::now();
        let mut buf = [0u8; 16];
        assert_eq!(guarded.read(&mut buf).unwrap(), 1);
        let err = loop {
            match guarded.read(&mut buf) {
                Ok(0) => panic!("peer did not close"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "budget did not bound the connection: {:?}",
            started.elapsed()
        );
        drop(trickler.join());
    }

    #[test]
    fn injected_read_error_and_short_read() {
        use crate::faults::FaultSpec;
        let (mut client, server) = pair();
        client.write_all(b"hello").unwrap();
        // Deterministic plan: find a seed offset where the first trip is a
        // short read by arming only short reads.
        let plan = FaultPlan::new(11).arm(
            FaultSite::SocketRead,
            FaultSpec {
                short_read_ppm: 1_000_000,
                ..FaultSpec::default()
            },
        );
        let mut guarded = GuardedStream::new(
            server,
            Duration::from_secs(2),
            Duration::from_secs(2),
            Arc::new(plan),
        )
        .unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(guarded.read(&mut buf).unwrap(), 1, "short read delivers 1");

        let plan = FaultPlan::new(11).arm(
            FaultSite::SocketRead,
            FaultSpec {
                error_ppm: 1_000_000,
                ..FaultSpec::default()
            },
        );
        let (mut client2, server2) = pair();
        client2.write_all(b"hello").unwrap();
        let mut guarded = GuardedStream::new(
            server2,
            Duration::from_secs(2),
            Duration::from_secs(2),
            Arc::new(plan),
        )
        .unwrap();
        let err = guarded.read(&mut buf).unwrap_err();
        assert!(err.to_string().contains("socket_read"), "{err}");
        let _ = client;
    }

    #[test]
    fn response_is_writable_after_the_read_budget_is_spent() {
        // Equal read/write budgets (the CLI's --read-budget-ms sets both):
        // a slow client exhausts the read budget, and the 408 must still
        // go out — the write budget starts at the first write.
        let (mut client, server) = pair();
        let mut guarded = GuardedStream::new(
            server,
            Duration::from_millis(100),
            Duration::from_millis(100),
            Arc::new(FaultPlan::inert()),
        )
        .unwrap();
        let mut buf = [0u8; 16];
        let err = guarded.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        std::thread::sleep(Duration::from_millis(120)); // well past pickup + budget
        guarded
            .write_all(b"HTTP/1.1 408")
            .expect("write after read timeout");
        drop(guarded);
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert_eq!(got, "HTTP/1.1 408");
    }

    #[test]
    fn writes_pass_through_and_are_budgeted() {
        let (mut client, server) = pair();
        let mut guarded = GuardedStream::new(
            server,
            Duration::from_secs(2),
            Duration::from_secs(2),
            Arc::new(FaultPlan::inert()),
        )
        .unwrap();
        guarded.write_all(b"pong").unwrap();
        guarded.flush().unwrap();
        drop(guarded);
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert_eq!(got, "pong");
    }
}
