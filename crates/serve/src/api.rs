//! Request handlers: JSON in, JSON out.
//!
//! Endpoints exposing the stack: `simulate` (ILP limit models over a
//! workload or an uploaded program), `simulate_range` (the same models
//! over a record subrange, warm-started from a published snapshot when
//! one exists), `tree` (static DEE tree queries), `levo` (machine-model
//! runs), and `debug/at` (time-travel to the machine state at one record
//! index). Handlers are plain functions over [`Json`] values so they are
//! directly testable without a socket, and so the integration tests can
//! byte-compare server responses against locally computed payloads built
//! with the same functions.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use dee_core::{StaticTree, TreeParams};
use dee_ilpsim::{
    simulate, LatencyModel, Model, PreparedTrace, PreparedTraceBuilder, SimConfig, SimOutcome,
};
use dee_isa::parse::parse_program;
use dee_levo::{Levo, LevoConfig, LevoReport, PredictorKind};
use dee_predict::{AlwaysTaken, BranchPredictor, Gshare, PapAdaptive, TwoBitCounter};
use dee_snap::Snapshot;
use dee_store::{ArtifactKey, Store};
use dee_vm::{
    trace_program_with, Engine, Machine, Trace, TraceChunkSource, TraceChunks, TraceRecord,
    DEFAULT_CHUNK_RECORDS,
};
use dee_workloads::{Scale, Workload};

use crate::cache::{fnv1a, fnv1a_words, CacheKey, PreparedCache, PreparedEntry};
use crate::faults::{FaultPlan, FaultSite};
use crate::json::Json;
use crate::metrics::Metrics;

/// Dynamic-instruction budget for uploaded programs and workload traces.
const STEP_LIMIT: u64 = 1_000_000_000;

/// Largest accepted `et`. The static tree costs `O(et^1.5)` to build, so
/// an unbounded value lets one request burn a worker for hours; 100 000
/// already covers every sweep in the paper by two orders of magnitude.
const MAX_ET: u64 = 100_000;

/// A handler failure carrying the HTTP status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code (400, 404, 422, 500, 504).
    pub status: u16,
    /// Human-readable message, returned as `{"error": ...}`.
    pub message: String,
    /// Machine-readable `DEE-*` diagnostic codes; non-empty only for
    /// static-analysis rejections, where they are returned as `"codes"`.
    pub codes: Vec<String>,
}

impl ApiError {
    /// A `400 Bad Request` error.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: message.into(),
            codes: Vec::new(),
        }
    }

    /// A `500 Internal Server Error`.
    #[must_use]
    pub fn internal(message: impl Into<String>) -> Self {
        ApiError {
            status: 500,
            message: message.into(),
            codes: Vec::new(),
        }
    }

    /// A `422 Unprocessable Entity` error: the request parsed, but static
    /// analysis proved the program wrong. Carries the diagnostic codes.
    #[must_use]
    pub fn unprocessable(message: impl Into<String>, codes: Vec<String>) -> Self {
        ApiError {
            status: 422,
            message: message.into(),
            codes,
        }
    }

    /// A `504` deadline-exceeded error.
    #[must_use]
    pub fn deadline() -> Self {
        ApiError {
            status: 504,
            message: "deadline exceeded".into(),
            codes: Vec::new(),
        }
    }

    /// The error as a JSON body.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members = vec![("error", Json::str(self.message.clone()))];
        if !self.codes.is_empty() {
            members.push((
                "codes",
                Json::Arr(self.codes.iter().map(|c| Json::str(c.clone())).collect()),
            ));
        }
        Json::obj(members)
    }
}

fn str_field<'a>(body: &'a Json, key: &str) -> Option<&'a str> {
    body.get(key).and_then(Json::as_str)
}

fn u64_field(body: &Json, key: &str, default: u64) -> Result<u64, ApiError> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            ApiError::bad_request(format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn parse_et(body: &Json) -> Result<u32, ApiError> {
    let et = u64_field(body, "et", 100)?;
    if et > MAX_ET {
        return Err(ApiError::bad_request(format!(
            "`et` too large (max {MAX_ET})"
        )));
    }
    Ok(et as u32)
}

fn scale_by_name(name: &str) -> Result<Scale, ApiError> {
    match name {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        "large" => Ok(Scale::Large),
        other => Err(ApiError::bad_request(format!("unknown scale `{other}`"))),
    }
}

fn workload_by_name(name: &str, scale: Scale) -> Result<Workload, ApiError> {
    dee_workloads::WorkloadRegistry::builtin()
        .build(name, scale)
        .ok_or_else(|| ApiError::bad_request(format!("unknown workload `{name}`")))
}

fn model_by_name(name: &str) -> Option<Model> {
    Model::all_constrained()
        .into_iter()
        .chain([Model::Oracle])
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

fn predictor_by_name(name: &str) -> Result<Box<dyn BranchPredictor>, ApiError> {
    match name {
        "twobit" => Ok(Box::new(TwoBitCounter::new())),
        "gshare" => Ok(Box::new(Gshare::new(12, 8))),
        "pap" => Ok(Box::new(PapAdaptive::new())),
        "taken" => Ok(Box::new(AlwaysTaken::new())),
        other => Err(ApiError::bad_request(format!(
            "unknown predictor `{other}` (expected twobit|gshare|pap|taken)"
        ))),
    }
}

/// The program + input-memory source of a simulate/levo request.
struct Source {
    program: dee_isa::Program,
    memory: Vec<i32>,
    /// Stable identity for cache keys and response labels.
    label: String,
}

/// Resolves the program + memory a request simulates. This is the single
/// place program-shape validation happens on the request path: the
/// assembler rejects syntax (`400`), and `dee-analyze` rejects programs
/// that parse but are statically wrong (`422`, with the `DEE-E*` codes in
/// the response). The structural guards downstream — `Machine`'s memory
/// geometry and step budgets — stay where they are; everything about the
/// *program text* is decided here, once.
fn resolve_source(body: &Json, faults: &FaultPlan) -> Result<Source, ApiError> {
    // The fault site guards the whole gate, so hostile plans exercise the
    // 422 path even when the storm traffic is workload-only.
    if faults.trip(FaultSite::AnalyzeReject).is_some() {
        return Err(ApiError::unprocessable(
            "injected fault: analyze_reject",
            Vec::new(),
        ));
    }
    match (str_field(body, "workload"), str_field(body, "program")) {
        (Some(_), Some(_)) => Err(ApiError::bad_request(
            "give either `workload` or `program`, not both",
        )),
        (Some(name), None) => {
            let scale = scale_by_name(str_field(body, "scale").unwrap_or("tiny"))?;
            if body.get("memory").is_some() {
                return Err(ApiError::bad_request(
                    "`memory` only applies to uploaded programs",
                ));
            }
            // Shipped workloads are proven lint-clean by the bench gate
            // and `workloads_clean` tests; re-analyzing them per request
            // would only burn worker time.
            let workload = workload_by_name(name, scale)?;
            Ok(Source {
                label: format!("{name}/{scale:?}").to_ascii_lowercase(),
                memory: workload.initial_memory.clone(),
                program: workload.program,
            })
        }
        (None, Some(source_text)) => {
            let program = parse_program(source_text)
                .map_err(|e| ApiError::bad_request(format!("program: {e}")))?;
            let report = dee_analyze::analyze(&program);
            if report.has_errors() {
                let mut codes: Vec<String> = Vec::new();
                for d in report.diagnostics() {
                    let code = d.lint.code();
                    if d.lint.severity() == dee_analyze::Severity::Error
                        && !codes.iter().any(|c| c == code)
                    {
                        codes.push(code.to_string());
                    }
                }
                return Err(ApiError::unprocessable(
                    format!(
                        "program rejected by static analysis ({} error(s)): {}",
                        report.error_count(),
                        codes.join(", ")
                    ),
                    codes,
                ));
            }
            let memory = match body.get("memory") {
                None => Vec::new(),
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .filter(|x| x.fract() == 0.0 && x.abs() <= f64::from(i32::MAX))
                            .map(|x| x as i32)
                            .ok_or_else(|| ApiError::bad_request("`memory` must hold integers"))
                    })
                    .collect::<Result<_, _>>()?,
                Some(_) => return Err(ApiError::bad_request("`memory` must be an array")),
            };
            let label = format!("program:{:016x}", fnv1a(source_text.as_bytes()));
            Ok(Source {
                program,
                memory,
                label,
            })
        }
        (None, None) => Err(ApiError::bad_request("missing `workload` or `program`")),
    }
}

/// The disk-tier artifact key for a request source. Workload labels are
/// `name/scale`; uploaded programs fall under the `program` pseudo
/// workload with their content hash as the scale tag. Either way the
/// digest covers the exact listing and memory image, so a label
/// collision can never replay the wrong trace.
fn artifact_key(source: &Source) -> ArtifactKey {
    let (workload, scale) = match source.label.split_once('/') {
        Some((workload, scale)) => (workload, scale),
        None => ("program", source.label.as_str()),
    };
    ArtifactKey::new(
        workload,
        scale,
        &source.program.to_listing(),
        &source.memory,
    )
}

/// Captures the raw trace on the VM. The miss path runs the pre-decoded
/// engine; a tripped [`FaultSite::DecodeCompile`] degrades the capture to
/// the reference interpreter. Both engines produce byte-identical traces,
/// so only the `dee_faults_injected_total{site="decode_compile"}` counter
/// reveals the degradation.
fn capture_trace(source: &Source, faults: &FaultPlan) -> Result<Trace, String> {
    let engine = if faults.trip(FaultSite::DecodeCompile).is_some() {
        Engine::Interp
    } else {
        Engine::Decoded
    };
    trace_program_with(engine, &source.program, &source.memory, STEP_LIMIT)
        .map_err(|e| format!("trace: {e}"))
}

/// Prepares the trace for a prepared-cache miss, consulting the disk
/// tier first when a store is configured.
///
/// With an intact artifact on disk, the raw records *stream* from the
/// container through the chunk pipeline ([`PreparedTrace::from_source`])
/// in [`DEFAULT_CHUNK_RECORDS`]-sized batches — the full `Trace` is
/// never materialized, which bounds the miss path's peak memory by the
/// chunk size instead of the trace length. Store faults degrade rather
/// than fail: a tripped read skips the disk tier (the trace is re-run
/// on the VM), a tripped write skips the best-effort publish, and
/// mid-stream body corruption — which [`Store::open_reader`]'s
/// header check cannot see — quarantines the artifact and degrades to
/// a from-scratch capture. Either way the caller gets a correct
/// prepared trace — only the `dee_store_*` counters reveal what
/// happened.
fn prepare_streamed(
    source: &Source,
    predictor_name: &str,
    faults: &FaultPlan,
    store: Option<&Store>,
) -> Result<PreparedTrace, String> {
    let mut predictor = predictor_by_name(predictor_name).map_err(|e| e.message)?;
    let Some(store) = store else {
        let trace = capture_trace(source, faults)?;
        return Ok(PreparedTrace::with_predictor(
            &source.program,
            &trace,
            predictor.as_mut(),
        ));
    };
    let key = artifact_key(source);
    let stats = store.stats();
    if faults.trip(FaultSite::StoreRead).is_none() {
        let replay_start = Instant::now();
        match store.open_reader(&key) {
            Ok(Some(mut reader)) => {
                match PreparedTrace::from_source(
                    &source.program,
                    &mut reader,
                    DEFAULT_CHUNK_RECORDS,
                    predictor.as_mut(),
                ) {
                    Ok(prepared) => {
                        stats.disk_hits.fetch_add(1, Ordering::Relaxed);
                        stats
                            .replay_nanos
                            .fetch_add(replay_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        return Ok(prepared);
                    }
                    Err(_) => {
                        // The header verified but the body did not:
                        // quarantine here (open_reader cannot), then
                        // re-trace. The predictor consumed part of the
                        // corrupt stream, so start a fresh one.
                        store.quarantine_key(&key);
                        stats.misses.fetch_add(1, Ordering::Relaxed);
                        predictor = predictor_by_name(predictor_name).map_err(|e| e.message)?;
                    }
                }
            }
            // Absent, or the header itself was corrupt (open_reader
            // already quarantined): both degrade to re-tracing.
            Ok(None) | Err(_) => {
                stats.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    } else {
        stats.misses.fetch_add(1, Ordering::Relaxed);
    }
    let trace_start = Instant::now();
    let trace = capture_trace(source, faults)?;
    stats
        .trace_nanos
        .fetch_add(trace_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    if faults.trip(FaultSite::StoreWrite).is_some() || store.put(&key, &trace).is_err() {
        stats.write_errors.fetch_add(1, Ordering::Relaxed);
    }
    Ok(PreparedTrace::with_predictor(
        &source.program,
        &trace,
        predictor.as_mut(),
    ))
}

/// Fetches (or prepares and caches) the prepared trace for a request.
///
/// On a prepared-cache miss with a store configured, the raw trace is
/// replayed from the disk tier when an intact artifact exists (and
/// recorded to it otherwise); the predictor replay still runs either
/// way. The returned `hit` flag — and therefore the response's `cache`
/// field — reports the *prepared* cache only: disk-tier activity is
/// visible exclusively through the `dee_store_*` metrics, so responses
/// stay byte-identical with and without a store.
///
/// # Errors
///
/// `400` for unknown workloads/predictors/unparseable programs, `500`
/// when the program faults or overruns its step budget.
pub fn prepared_for(
    cache: &PreparedCache,
    body: &Json,
    faults: &FaultPlan,
    store: Option<&Store>,
) -> Result<(Arc<PreparedEntry>, bool, String), ApiError> {
    let source = resolve_source(body, faults)?;
    let predictor_name = str_field(body, "predictor").unwrap_or("twobit");
    // Validate the predictor name before the (expensive) miss path.
    predictor_by_name(predictor_name)?;
    if faults.trip(FaultSite::CacheLookup).is_some() {
        return Err(ApiError::internal("injected fault: cache_lookup"));
    }
    let key = CacheKey {
        program: fnv1a(source.program.to_listing().as_bytes()),
        memory: fnv1a_words(&source.memory),
        predictor: fnv1a(predictor_name.as_bytes()),
    };
    let label = source.label.clone();
    let (entry, hit) = cache
        .get_or_insert_with(key, move || {
            if faults.trip(FaultSite::TracePrepare).is_some() {
                return Err("injected fault: trace_prepare".to_string());
            }
            let prepared = prepare_streamed(&source, predictor_name, faults, store)?;
            if faults.trip(FaultSite::CacheInsert).is_some() {
                return Err("injected fault: cache_insert".to_string());
            }
            Ok(PreparedEntry {
                program: source.program,
                prepared,
            })
        })
        .map_err(ApiError::internal)?;
    Ok((entry, hit, label))
}

fn parse_latency(body: &Json) -> Result<LatencyModel, ApiError> {
    match str_field(body, "latency") {
        None | Some("unit") => Ok(LatencyModel::UNIT),
        Some("classic") => Ok(LatencyModel::CLASSIC),
        Some(other) => Err(ApiError::bad_request(format!(
            "unknown latency model `{other}`"
        ))),
    }
}

/// Renders one simulation outcome — the payload tests byte-compare.
#[must_use]
pub fn outcome_json(outcome: &SimOutcome) -> Json {
    Json::obj(vec![
        ("model", Json::str(outcome.model.name())),
        ("et", Json::from(outcome.et)),
        ("instructions", Json::from(outcome.instructions)),
        ("cycles", Json::from(outcome.cycles)),
        ("speedup", Json::from(outcome.speedup())),
        ("ipc", Json::from(outcome.ipc())),
        ("branches", Json::from(outcome.branches)),
        ("mispredicts", Json::from(outcome.mispredicts)),
    ])
}

/// `POST /simulate` — run ILP limit models over a prepared trace.
///
/// # Errors
///
/// See [`prepared_for`]; additionally `400` for unknown models and `504`
/// when the deadline passes between models.
pub fn handle_simulate(
    cache: &PreparedCache,
    body: &Json,
    deadline: Instant,
    faults: &FaultPlan,
    store: Option<&Store>,
) -> Result<(Json, bool), ApiError> {
    let (entry, hit, label) = prepared_for(cache, body, faults, store)?;
    let et = parse_et(body)?;
    let models: Vec<Model> = match str_field(body, "model") {
        None | Some("all") => Model::all_constrained()
            .into_iter()
            .chain([Model::Oracle])
            .collect(),
        Some(name) => vec![model_by_name(name)
            .ok_or_else(|| ApiError::bad_request(format!("unknown model `{name}`")))?],
    };
    if et == 0 && models.iter().any(|m| *m != Model::Oracle) {
        return Err(ApiError::bad_request(
            "`et` must be at least 1 for constrained models",
        ));
    }
    let p = match body.get("p") {
        None => entry.prepared.accuracy(),
        Some(v) => v
            .as_f64()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| ApiError::bad_request("`p` must be in [0, 1]"))?,
    };
    let latency = parse_latency(body)?;
    let max_pe = u64_field(body, "max_pe", 0)?;

    let mut results = Vec::with_capacity(models.len());
    for model in models {
        if Instant::now() > deadline {
            return Err(ApiError::deadline());
        }
        let mut config = SimConfig::new(model, if model == Model::Oracle { 0 } else { et })
            .with_p(p)
            .with_latency(latency);
        if max_pe > 0 {
            config = config.with_max_pe(
                u32::try_from(max_pe).map_err(|_| ApiError::bad_request("`max_pe` too large"))?,
            );
        }
        results.push(outcome_json(&simulate(&entry.prepared, &config)));
    }
    let response = Json::obj(vec![
        ("source", Json::str(label)),
        ("cache", Json::str(if hit { "hit" } else { "miss" })),
        ("p", Json::from(p)),
        ("results", Json::Arr(results)),
    ]);
    Ok((response, hit))
}

/// One cell of a `POST /batch` grid: a fully resolved (workload, model,
/// `E_T`) point plus the request-wide options it inherits. Every axis
/// value is validated by [`parse_batch`] before any cell runs, so cells
/// can be handed to the worker pool without re-checking names; the
/// deterministic response order is the order [`parse_batch`] emits.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchCell {
    /// Workload name (known-good by construction).
    pub workload: String,
    /// Scale name shared by every cell.
    pub scale: String,
    /// The ILP model to run.
    pub model: Model,
    /// Branch-path resources; forced to 0 for `Oracle`.
    pub et: u32,
    /// Fixed prediction accuracy; `None` uses the trace's measured one.
    pub p: Option<f64>,
    /// Predictor for trace preparation; `None` means the default.
    pub predictor: Option<String>,
    /// Latency model shared by every cell.
    pub latency: LatencyModel,
    /// PE cap shared by every cell; 0 leaves PEs implicitly limited.
    pub max_pe: u32,
}

/// Parses a `POST /batch` body into its grid of cells, in deterministic
/// grid order: workloads (outer) × models × ets (inner).
///
/// `workloads` is required; `models` defaults to all eight, `ets` to
/// `[100]`. `scale`, `p`, `predictor`, `latency`, and `max_pe` apply to
/// every cell. Validation is all-upfront: a typo anywhere fails the whole
/// request with `400` before a single cell is fanned out.
///
/// # Errors
///
/// `400` for missing/invalid axes or options.
pub fn parse_batch(body: &Json) -> Result<Vec<BatchCell>, ApiError> {
    // Upfront name validation must not build the workload — that is the
    // cell's job — so only the registry's name table is consulted here.
    let registry = dee_workloads::WorkloadRegistry::builtin();
    let workloads: Vec<String> = match body.get("workloads") {
        None => return Err(ApiError::bad_request("missing `workloads` array")),
        Some(Json::Arr(items)) if !items.is_empty() => items
            .iter()
            .map(|v| {
                let name = v
                    .as_str()
                    .ok_or_else(|| ApiError::bad_request("`workloads` must hold strings"))?;
                if !registry.contains(name) {
                    return Err(ApiError::bad_request(format!("unknown workload `{name}`")));
                }
                Ok(name.to_string())
            })
            .collect::<Result<_, _>>()?,
        Some(_) => {
            return Err(ApiError::bad_request(
                "`workloads` must be a non-empty array",
            ))
        }
    };
    let scale_name = str_field(body, "scale").unwrap_or("tiny").to_string();
    scale_by_name(&scale_name)?;
    let models: Vec<Model> = match body.get("models") {
        None => Model::all_constrained()
            .into_iter()
            .chain([Model::Oracle])
            .collect(),
        Some(Json::Arr(items)) if !items.is_empty() => items
            .iter()
            .map(|v| {
                v.as_str()
                    .and_then(model_by_name)
                    .ok_or_else(|| ApiError::bad_request(format!("unknown model in `models`: {v}")))
            })
            .collect::<Result<_, _>>()?,
        Some(_) => return Err(ApiError::bad_request("`models` must be a non-empty array")),
    };
    let ets: Vec<u32> = match body.get("ets") {
        None => vec![100],
        Some(Json::Arr(items)) if !items.is_empty() => items
            .iter()
            .map(|v| {
                let et = v.as_u64().ok_or_else(|| {
                    ApiError::bad_request("`ets` must hold non-negative integers")
                })?;
                if et > MAX_ET {
                    return Err(ApiError::bad_request(format!(
                        "`et` too large (max {MAX_ET})"
                    )));
                }
                Ok(et as u32)
            })
            .collect::<Result<_, _>>()?,
        Some(_) => return Err(ApiError::bad_request("`ets` must be a non-empty array")),
    };
    if ets.contains(&0) && models.iter().any(|m| *m != Model::Oracle) {
        return Err(ApiError::bad_request(
            "`et` must be at least 1 for constrained models",
        ));
    }
    let p = match body.get("p") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|p| (0.0..=1.0).contains(p))
                .ok_or_else(|| ApiError::bad_request("`p` must be in [0, 1]"))?,
        ),
    };
    let predictor = match str_field(body, "predictor") {
        None => None,
        Some(name) => {
            predictor_by_name(name)?;
            Some(name.to_string())
        }
    };
    let latency = parse_latency(body)?;
    let max_pe = u32::try_from(u64_field(body, "max_pe", 0)?)
        .map_err(|_| ApiError::bad_request("`max_pe` too large"))?;
    let mut cells = Vec::with_capacity(workloads.len() * models.len() * ets.len());
    for workload in &workloads {
        for &model in &models {
            for &et in &ets {
                cells.push(BatchCell {
                    workload: workload.clone(),
                    scale: scale_name.clone(),
                    model,
                    et,
                    p,
                    predictor: predictor.clone(),
                    latency,
                    max_pe,
                });
            }
        }
    }
    Ok(cells)
}

fn batch_cell_identity(cell: &BatchCell) -> Vec<(&'static str, Json)> {
    vec![
        ("workload", Json::str(cell.workload.clone())),
        ("model", Json::str(cell.model.name())),
        ("et", Json::from(cell.et)),
    ]
}

/// The body for a cell that failed outside [`run_batch_cell`] — the
/// server uses it for panics caught at the cell boundary.
#[must_use]
pub fn batch_cell_error(cell: &BatchCell, message: &str) -> Json {
    let mut members = batch_cell_identity(cell);
    members.push(("error", Json::str(message.to_string())));
    Json::obj(members)
}

/// Runs one batch cell against the shared prepared-trace cache.
///
/// Returns the cell's JSON — its identity plus either `result` (one
/// [`outcome_json`] payload) or `error` — and whether trace preparation
/// hit the cache (`None` when the cell failed before the cache answered).
/// A failure here never fails the batch: it becomes that cell's `error`
/// member, exactly like a panic caught at the boundary above.
#[must_use]
pub fn run_batch_cell(
    cache: &PreparedCache,
    cell: &BatchCell,
    deadline: Instant,
    faults: &FaultPlan,
    store: Option<&Store>,
) -> (Json, Option<bool>) {
    let mut source = vec![
        ("workload", Json::str(cell.workload.clone())),
        ("scale", Json::str(cell.scale.clone())),
    ];
    if let Some(predictor) = &cell.predictor {
        source.push(("predictor", Json::str(predictor.clone())));
    }
    let source = Json::obj(source);
    let mut hit = None;
    let outcome = (|| {
        let (entry, was_hit, _label) = prepared_for(cache, &source, faults, store)?;
        hit = Some(was_hit);
        if Instant::now() > deadline {
            return Err(ApiError::deadline());
        }
        let p = cell.p.unwrap_or_else(|| entry.prepared.accuracy());
        let et = if cell.model == Model::Oracle {
            0
        } else {
            cell.et
        };
        let mut config = SimConfig::new(cell.model, et)
            .with_p(p)
            .with_latency(cell.latency);
        if cell.max_pe > 0 {
            config = config.with_max_pe(cell.max_pe);
        }
        Ok(outcome_json(&simulate(&entry.prepared, &config)))
    })();
    let mut members = batch_cell_identity(cell);
    if let Some(h) = hit {
        members.push(("cache", Json::str(if h { "hit" } else { "miss" })));
    }
    match outcome {
        Ok(result) => members.push(("result", result)),
        Err(e) => members.push(("error", Json::str(e.message))),
    }
    (Json::obj(members), hit)
}

/// Renders a static tree — the payload tests byte-compare.
#[must_use]
pub fn tree_json(tree: &StaticTree) -> Json {
    Json::obj(vec![
        ("p", Json::from(tree.p())),
        ("et", Json::from(tree.et())),
        ("mainline_len", Json::from(tree.mainline_len())),
        ("h_dee", Json::from(tree.h_dee())),
        ("dee_region_paths", Json::from(tree.dee_region_paths())),
        ("total_paths", Json::from(tree.total_paths())),
        ("is_single_path", Json::from(tree.is_single_path())),
    ])
}

/// `POST /tree` — static DEE tree queries.
///
/// # Errors
///
/// `400` for out-of-range parameters.
pub fn handle_tree(body: &Json) -> Result<Json, ApiError> {
    let p = match body.get("p") {
        None => 0.9053,
        Some(v) => v
            .as_f64()
            // The static tree's recurrences require p in [0.5, 1);
            // `StaticTree::build` asserts it, so anything outside must be
            // refused here rather than panic a worker.
            .filter(|p| (0.5..1.0).contains(p))
            .ok_or_else(|| ApiError::bad_request("`p` must be in [0.5, 1)"))?,
    };
    let et = parse_et(body)?;
    if et == 0 {
        return Err(ApiError::bad_request("`et` must be at least 1"));
    }
    Ok(tree_json(&StaticTree::build(TreeParams { p, et })))
}

/// Renders a Levo report — the payload tests byte-compare.
#[must_use]
pub fn levo_json(report: &LevoReport) -> Json {
    Json::obj(vec![
        ("cycles", Json::from(report.cycles)),
        ("retired", Json::from(report.retired)),
        ("ipc", Json::from(report.ipc())),
        ("dispatched", Json::from(report.dispatched)),
        ("squashed", Json::from(report.squashed)),
        ("mispredicts", Json::from(report.mispredicts)),
        ("dee_covered", Json::from(report.dee_covered)),
        ("output_len", Json::from(report.output.len() as u64)),
        // Hex string: the checksum is a full 64-bit value, which JSON
        // numbers (f64) cannot carry exactly.
        (
            "output_checksum",
            Json::str(format!("{:016x}", dee_vm::output_checksum(&report.output))),
        ),
    ])
}

/// `POST /levo` — run the Levo machine model.
///
/// # Errors
///
/// `400` for bad configs or sources, `422` when static analysis rejects
/// an uploaded program, `500` when the machine faults, `504` past the
/// deadline.
pub fn handle_levo(body: &Json, deadline: Instant, faults: &FaultPlan) -> Result<Json, ApiError> {
    let source = resolve_source(body, faults)?;
    let mut config = LevoConfig::default();
    if let Some(paths) = body.get("dee_paths") {
        config.dee_paths = paths
            .as_u64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| ApiError::bad_request("`dee_paths` must be a non-negative integer"))?;
    }
    if let Some(cols) = body.get("dee_cols") {
        config.dee_cols = cols
            .as_u64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| ApiError::bad_request("`dee_cols` must be a non-negative integer"))?;
    }
    if let Some(n) = body.get("n") {
        config.n = n
            .as_u64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| ApiError::bad_request("`n` must be a non-negative integer"))?;
    }
    if let Some(m) = body.get("m") {
        config.m = m
            .as_u64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| ApiError::bad_request("`m` must be a non-negative integer"))?;
    }
    match str_field(body, "predictor") {
        None | Some("twobit") => config.predictor = PredictorKind::TwoBit,
        Some("pap") => config.predictor = PredictorKind::PapSpeculative,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown levo predictor `{other}` (expected twobit|pap)"
            )))
        }
    }
    config.validate().map_err(ApiError::bad_request)?;
    if Instant::now() > deadline {
        return Err(ApiError::deadline());
    }
    let report = Levo::new(config)
        .run(&source.program, &source.memory)
        .map_err(|e| ApiError::internal(e.to_string()))?;
    let mut json = levo_json(&report);
    if let Json::Obj(members) = &mut json {
        members.insert(0, ("source".to_string(), Json::str(source.label)));
    }
    Ok(json)
}

/// Streams records through the chunk pipeline, building a prepared
/// trace over `[start, end)` only.
///
/// Records `[0, skip)` are discarded unseen — a restored snapshot
/// already accounts for them (its predictor blobs carry exactly that
/// prefix's history). Records `[skip, start)` replay through the
/// predictor without entering the build, warming it to the range
/// start with the exact `predict` + `resolve` sequence
/// [`PreparedTraceBuilder::push_record`] would have issued. Records
/// from `start` up to `end` (or trace end) are packed. Chunk pulls are
/// capped at each phase boundary, so a chunk never straddles phases.
///
/// Returns the prepared subtrace, the number of records packed, and
/// the nanoseconds spent replaying ahead of `start`.
fn prepare_range(
    program: &dee_isa::Program,
    records: &mut dyn TraceChunkSource,
    skip: u64,
    start: u64,
    end: Option<u64>,
    predictor: &mut dyn BranchPredictor,
) -> Result<(PreparedTrace, u64, u64), String> {
    let chunk = DEFAULT_CHUNK_RECORDS;
    let mut buf: Vec<TraceRecord> = Vec::new();
    let mut index = 0u64;
    while index < skip {
        buf.clear();
        let want = chunk.min(usize::try_from(skip - index).unwrap_or(chunk));
        let n = records.next_chunk(&mut buf, want)?;
        if n == 0 {
            break;
        }
        index += n as u64;
    }
    let warm_start = Instant::now();
    while index < start {
        buf.clear();
        let want = chunk.min(usize::try_from(start - index).unwrap_or(chunk));
        let n = records.next_chunk(&mut buf, want)?;
        if n == 0 {
            break;
        }
        for record in &buf {
            if let Some(outcome) = record.branch {
                let _ = predictor.predict(record.pc);
                predictor.resolve(record.pc, outcome.taken);
            }
        }
        index += n as u64;
    }
    let warm_nanos = warm_start.elapsed().as_nanos() as u64;
    let mut builder = PreparedTraceBuilder::new(program, predictor);
    while end.is_none_or(|e| index < e) {
        buf.clear();
        let want = match end {
            Some(e) => chunk.min(usize::try_from(e - index).unwrap_or(chunk)),
            None => chunk,
        };
        let n = records.next_chunk(&mut buf, want)?;
        if n == 0 {
            break;
        }
        builder.push_chunk(&buf);
        index += n as u64;
    }
    let taken = builder.pushed() as u64;
    // The sub-trace's output stream is not meaningful (output is a
    // whole-run artifact); the models never read it.
    Ok((builder.finish(Vec::new()), taken, warm_nanos))
}

/// `POST /simulate_range` — run the ILP limit models over records
/// `[start, end)` of a source's trace.
///
/// When a store is configured, the handler seeks the published
/// snapshot with the largest record index `≤ start` and warm-starts
/// the predictor from its serialized state instead of replaying the
/// whole prefix. The response is **byte-identical** with and without a
/// snapshot (and under any [`FaultSite::SnapSeek`] /
/// [`FaultSite::SnapRead`] injection): warm starts are visible only in
/// the `dee_snap_*` counters. Range results are not entered into the
/// prepared cache — each request streams its own subrange.
///
/// # Errors
///
/// `400` for bad sources, an empty/inverted range, or a `start` past
/// the end of the trace; `422` from static analysis; `500` when the
/// program faults; `504` past the deadline.
pub fn handle_simulate_range(
    body: &Json,
    deadline: Instant,
    faults: &FaultPlan,
    store: Option<&Store>,
    metrics: &Metrics,
) -> Result<Json, ApiError> {
    let source = resolve_source(body, faults)?;
    let start = u64_field(body, "start", 0)?;
    let end = match body.get("end") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| ApiError::bad_request("`end` must be a non-negative integer"))?,
        ),
    };
    if let Some(e) = end {
        if e <= start {
            return Err(ApiError::bad_request("`end` must be greater than `start`"));
        }
    }
    let predictor_name = str_field(body, "predictor").unwrap_or("twobit");
    predictor_by_name(predictor_name)?;
    let et = parse_et(body)?;
    let models: Vec<Model> = match str_field(body, "model") {
        None | Some("all") => Model::all_constrained()
            .into_iter()
            .chain([Model::Oracle])
            .collect(),
        Some(name) => vec![model_by_name(name)
            .ok_or_else(|| ApiError::bad_request(format!("unknown model `{name}`")))?],
    };
    if et == 0 && models.iter().any(|m| *m != Model::Oracle) {
        return Err(ApiError::bad_request(
            "`et` must be at least 1 for constrained models",
        ));
    }
    let latency = parse_latency(body)?;
    let max_pe = u64_field(body, "max_pe", 0)?;
    if faults.trip(FaultSite::TracePrepare).is_some() {
        return Err(ApiError::internal("injected fault: trace_prepare"));
    }

    let key = artifact_key(&source);
    // Warm-start attempt. A usable snapshot only ever changes *where*
    // the predictor replay starts, never what the packed region looks
    // like — the DEESNAP1 convention (state at `k` = predictor has
    // consumed exactly records `[0, k)`) guarantees the mispredict
    // flags come out identical to a from-zero replay.
    let snap: Option<Snapshot> = store.and_then(|store| {
        let found = if faults.trip(FaultSite::SnapSeek).is_some() {
            None
        } else {
            dee_snap::nearest_snapshot(store, &key, start)
        };
        let (_, bytes) = match found {
            Some(hit) => hit,
            None => {
                metrics.snap_seek_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let decoded = if faults.trip(FaultSite::SnapRead).is_some() {
            Err("injected fault: snap_read".to_string())
        } else {
            Snapshot::decode(&bytes, &source.memory).and_then(|snap| {
                if snap.parent_digest != key.digest {
                    return Err("snapshot parent digest mismatch".to_string());
                }
                // Prove the predictor blob restores before committing to
                // the warm start; a missing blob restores only stateless
                // predictors (load_state(&[]) is their no-op default).
                let mut probe = predictor_by_name(predictor_name).map_err(|e| e.message)?;
                probe.load_state(snap.predictor_state(probe.name()).unwrap_or(&[]))?;
                Ok(snap)
            })
        };
        match decoded {
            Ok(snap) => {
                metrics.snap_seek_hits.fetch_add(1, Ordering::Relaxed);
                Some(snap)
            }
            Err(_) => {
                metrics.snap_decode_failures.fetch_add(1, Ordering::Relaxed);
                metrics.snap_seek_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    });
    let skip = snap.as_ref().map_or(0, |s| s.record_index);
    let make_predictor = || -> Result<Box<dyn BranchPredictor>, String> {
        let mut p = predictor_by_name(predictor_name).map_err(|e| e.message)?;
        if let Some(s) = &snap {
            p.load_state(s.predictor_state(p.name()).unwrap_or(&[]))?;
        }
        Ok(p)
    };

    // The record stream: replayed from the disk artifact when intact,
    // captured on the VM otherwise (and best-effort published so the
    // next range request can stream it). Mirrors `prepare_streamed`'s
    // degradation ladder, including quarantine on body corruption.
    let mut built: Option<(PreparedTrace, u64, u64)> = None;
    if let Some(store) = store {
        let stats = store.stats();
        if faults.trip(FaultSite::StoreRead).is_none() {
            let replay_start = Instant::now();
            if let Ok(Some(mut reader)) = store.open_reader(&key) {
                let mut predictor = make_predictor().map_err(ApiError::internal)?;
                match prepare_range(
                    &source.program,
                    &mut reader,
                    skip,
                    start,
                    end,
                    predictor.as_mut(),
                ) {
                    Ok(done) => {
                        stats.disk_hits.fetch_add(1, Ordering::Relaxed);
                        stats
                            .replay_nanos
                            .fetch_add(replay_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        built = Some(done);
                    }
                    Err(_) => {
                        store.quarantine_key(&key);
                        stats.misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            } else {
                stats.misses.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            stats.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
    let (prepared, taken, warm_nanos) = match built {
        Some(done) => done,
        None => {
            let trace = capture_trace(&source, faults).map_err(ApiError::internal)?;
            if let Some(store) = store {
                if faults.trip(FaultSite::StoreWrite).is_some() || store.put(&key, &trace).is_err()
                {
                    store.stats().write_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            let mut predictor = make_predictor().map_err(ApiError::internal)?;
            let mut chunks = TraceChunks::new(&trace);
            prepare_range(
                &source.program,
                &mut chunks,
                skip,
                start,
                end,
                predictor.as_mut(),
            )
            .map_err(ApiError::internal)?
        }
    };
    metrics
        .snap_replay_nanos
        .fetch_add(warm_nanos, Ordering::Relaxed);
    if taken == 0 {
        return Err(ApiError::bad_request(format!(
            "`start` ({start}) is at or past the end of the trace"
        )));
    }

    let p = match body.get("p") {
        None => prepared.accuracy(),
        Some(v) => v
            .as_f64()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| ApiError::bad_request("`p` must be in [0, 1]"))?,
    };
    let mut results = Vec::with_capacity(models.len());
    for model in models {
        if Instant::now() > deadline {
            return Err(ApiError::deadline());
        }
        let mut config = SimConfig::new(model, if model == Model::Oracle { 0 } else { et })
            .with_p(p)
            .with_latency(latency);
        if max_pe > 0 {
            config = config.with_max_pe(
                u32::try_from(max_pe).map_err(|_| ApiError::bad_request("`max_pe` too large"))?,
            );
        }
        results.push(outcome_json(&simulate(&prepared, &config)));
    }
    Ok(Json::obj(vec![
        ("source", Json::str(source.label)),
        ("start", Json::from(start)),
        ("end", Json::from(start + taken)),
        ("records", Json::from(taken)),
        ("p", Json::from(p)),
        ("results", Json::Arr(results)),
    ]))
}

/// `GET /debug/at?workload=W&scale=S&record=K` — time travel: the
/// machine's architectural state right before executing record `K`.
///
/// Restores the nearest published snapshot at or below `K` when a
/// store is configured and steps the VM the remaining distance, so the
/// answer is byte-identical with and without snapshots — only the
/// `dee_snap_*` counters reveal which path ran. The response carries
/// checksums of the output and memory images, never the images
/// themselves.
///
/// # Errors
///
/// `400` for unknown workloads/scales, a missing or non-numeric
/// `record`, or a `K` past the end of the trace; `500` when the VM
/// faults; `504` past the deadline.
pub fn handle_debug_at(
    request: &crate::http::Request,
    deadline: Instant,
    faults: &FaultPlan,
    store: Option<&Store>,
    metrics: &Metrics,
) -> Result<Json, ApiError> {
    let workload = request
        .query_param("workload")
        .ok_or_else(|| ApiError::bad_request("missing `workload` query parameter"))?;
    let scale = scale_by_name(request.query_param("scale").unwrap_or("tiny"))?;
    let record: u64 = request
        .query_param("record")
        .ok_or_else(|| ApiError::bad_request("missing `record` query parameter"))?
        .parse()
        .map_err(|_| ApiError::bad_request("`record` must be a non-negative integer"))?;
    if record > STEP_LIMIT {
        return Err(ApiError::bad_request(format!(
            "`record` too large (max {STEP_LIMIT})"
        )));
    }
    let w = workload_by_name(workload, scale)?;
    let source = Source {
        label: format!("{workload}/{scale:?}").to_ascii_lowercase(),
        memory: w.initial_memory.clone(),
        program: w.program,
    };
    let key = artifact_key(&source);
    let mut machine = Machine::new();
    machine
        .try_load_memory(&source.memory)
        .map_err(|e| ApiError::internal(e.to_string()))?;
    if let Some(store) = store {
        let found = if faults.trip(FaultSite::SnapSeek).is_some() {
            None
        } else {
            dee_snap::nearest_snapshot(store, &key, record)
        };
        match found {
            Some((_, bytes)) => {
                let decoded = if faults.trip(FaultSite::SnapRead).is_some() {
                    Err("injected fault: snap_read".to_string())
                } else {
                    Snapshot::decode(&bytes, &source.memory).and_then(|snap| {
                        if snap.parent_digest != key.digest {
                            return Err("snapshot parent digest mismatch".to_string());
                        }
                        Ok(snap)
                    })
                };
                match decoded {
                    Ok(snap) => {
                        machine.restore_state(&snap.machine);
                        metrics.snap_seek_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        metrics.snap_decode_failures.fetch_add(1, Ordering::Relaxed);
                        metrics.snap_seek_misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            None => {
                metrics.snap_seek_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let replay_start = Instant::now();
    let mut since_deadline_check = 0u32;
    while machine.executed() < record {
        if machine.is_halted() {
            return Err(ApiError::bad_request(format!(
                "`record` {record} is past the end of the trace ({} records)",
                machine.executed()
            )));
        }
        // Polling the clock per instruction would dominate the replay;
        // once per 64 Ki steps bounds the overshoot to well under a
        // millisecond of VM work.
        since_deadline_check += 1;
        if since_deadline_check == 65_536 {
            since_deadline_check = 0;
            if Instant::now() > deadline {
                return Err(ApiError::deadline());
            }
        }
        machine
            .step(&source.program)
            .map_err(|e| ApiError::internal(e.to_string()))?;
    }
    metrics
        .snap_replay_nanos
        .fetch_add(replay_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    let state = machine.snapshot_state();
    Ok(Json::obj(vec![
        ("source", Json::str(source.label)),
        ("record", Json::from(record)),
        ("pc", Json::from(state.pc)),
        ("halted", Json::from(state.halted)),
        ("depth", Json::from(state.depth)),
        ("executed", Json::from(state.executed)),
        (
            "regs",
            Json::Arr(
                state
                    .regs
                    .iter()
                    .map(|&r| Json::from(f64::from(r)))
                    .collect(),
            ),
        ),
        ("output_len", Json::from(state.output.len() as u64)),
        (
            "output_checksum",
            Json::str(format!("{:016x}", dee_vm::output_checksum(&state.output))),
        ),
        ("mem_words", Json::from(state.mem.len() as u64)),
        (
            "mem_checksum",
            Json::str(format!("{:016x}", fnv1a_words(&state.mem))),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn far_deadline() -> Instant {
        Instant::now() + std::time::Duration::from_secs(60)
    }

    #[test]
    fn simulate_workload_miss_then_hit() {
        let cache = PreparedCache::new(8, 2);
        let body = parse(r#"{"workload":"xlisp","scale":"tiny","model":"SP","et":16}"#).unwrap();
        let (response, hit) =
            handle_simulate(&cache, &body, far_deadline(), &FaultPlan::inert(), None).unwrap();
        assert!(!hit);
        assert_eq!(response.get("cache").and_then(Json::as_str), Some("miss"));
        let results = response.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("model").and_then(Json::as_str), Some("SP"));
        assert!(results[0].get("cycles").and_then(Json::as_u64).unwrap() > 0);
        let (response, hit) =
            handle_simulate(&cache, &body, far_deadline(), &FaultPlan::inert(), None).unwrap();
        assert!(hit);
        assert_eq!(response.get("cache").and_then(Json::as_str), Some("hit"));
    }

    #[test]
    fn simulate_matches_direct_call_exactly() {
        let cache = PreparedCache::new(8, 2);
        let body =
            parse(r#"{"workload":"compress","scale":"tiny","model":"DEE-CD-MF","et":32}"#).unwrap();
        let (response, _) =
            handle_simulate(&cache, &body, far_deadline(), &FaultPlan::inert(), None).unwrap();

        let w = dee_workloads::compress::build(Scale::Tiny);
        let trace = w.capture_trace().unwrap();
        let prepared = PreparedTrace::new(&w.program, &trace);
        let expected = simulate(
            &prepared,
            &SimConfig::new(Model::DeeCdMf, 32).with_p(prepared.accuracy()),
        );
        let got = &response.get("results").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(got.to_string(), outcome_json(&expected).to_string());
    }

    #[test]
    fn simulate_uploaded_program_with_memory() {
        let cache = PreparedCache::new(8, 2);
        let body =
            parse(r#"{"program":"lw r1, 0(zero)\nout r1\nhalt\n","memory":[42],"model":"oracle"}"#)
                .unwrap();
        let (response, _) =
            handle_simulate(&cache, &body, far_deadline(), &FaultPlan::inert(), None).unwrap();
        let results = response.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(
            results[0].get("model").and_then(Json::as_str),
            Some("Oracle")
        );
    }

    #[test]
    fn simulate_distinguishes_memory_and_predictor_in_cache_key() {
        let cache = PreparedCache::new(8, 2);
        let a = parse(
            r#"{"program":"lw r1, 0(zero)\nout r1\nhalt\n","memory":[1],"model":"SP","et":4}"#,
        )
        .unwrap();
        let b = parse(
            r#"{"program":"lw r1, 0(zero)\nout r1\nhalt\n","memory":[2],"model":"SP","et":4}"#,
        )
        .unwrap();
        let c = parse(r#"{"program":"lw r1, 0(zero)\nout r1\nhalt\n","memory":[1],"model":"SP","et":4,"predictor":"gshare"}"#).unwrap();
        assert!(
            !handle_simulate(&cache, &a, far_deadline(), &FaultPlan::inert(), None)
                .unwrap()
                .1
        );
        assert!(
            !handle_simulate(&cache, &b, far_deadline(), &FaultPlan::inert(), None)
                .unwrap()
                .1
        );
        assert!(
            !handle_simulate(&cache, &c, far_deadline(), &FaultPlan::inert(), None)
                .unwrap()
                .1
        );
        assert!(
            handle_simulate(&cache, &a, far_deadline(), &FaultPlan::inert(), None)
                .unwrap()
                .1
        );
    }

    #[test]
    fn simulate_rejects_bad_inputs() {
        let cache = PreparedCache::new(8, 2);
        for (body, needle) in [
            (r#"{}"#, "missing"),
            (r#"{"workload":"nope"}"#, "unknown workload"),
            (r#"{"workload":"xlisp","scale":"huge"}"#, "unknown scale"),
            (r#"{"workload":"xlisp","model":"warp"}"#, "unknown model"),
            (
                r#"{"workload":"xlisp","predictor":"psychic"}"#,
                "unknown predictor",
            ),
            (r#"{"workload":"xlisp","memory":[1]}"#, "only applies"),
            (r#"{"workload":"xlisp","program":"halt\n"}"#, "not both"),
            (r#"{"workload":"xlisp","et":0}"#, "at least 1"),
            (r#"{"program":"not an opcode\n"}"#, "program:"),
        ] {
            let err = handle_simulate(
                &cache,
                &parse(body).unwrap(),
                far_deadline(),
                &FaultPlan::inert(),
                None,
            )
            .unwrap_err();
            assert_eq!(err.status, 400, "{body}");
            assert!(err.message.contains(needle), "{body}: {}", err.message);
        }
    }

    #[test]
    fn simulate_past_deadline_times_out() {
        let cache = PreparedCache::new(8, 2);
        let body = parse(r#"{"workload":"xlisp","scale":"tiny"}"#).unwrap();
        let err = handle_simulate(
            &cache,
            &body,
            Instant::now() - std::time::Duration::from_secs(1),
            &FaultPlan::inert(),
            None,
        )
        .unwrap_err();
        assert_eq!(err.status, 504);
    }

    #[test]
    fn tree_matches_direct_build() {
        let body = parse(r#"{"p":0.9053,"et":100}"#).unwrap();
        let response = handle_tree(&body).unwrap();
        let expected = tree_json(&StaticTree::build(TreeParams { p: 0.9053, et: 100 }));
        assert_eq!(response.to_string(), expected.to_string());
        assert_eq!(
            response.get("mainline_len").and_then(Json::as_u64),
            Some(34)
        );
    }

    #[test]
    fn tree_rejects_bad_params() {
        assert!(handle_tree(&parse(r#"{"p":1.5}"#).unwrap()).is_err());
        assert!(handle_tree(&parse(r#"{"et":0}"#).unwrap()).is_err());
    }

    #[test]
    fn tree_rejects_p_below_half_instead_of_panicking() {
        // StaticTree::build asserts p in [0.5, 1); the handler must turn
        // that precondition into a 400, never reach the assert.
        for body in [r#"{"p":0.3}"#, r#"{"p":0.49999}"#, r#"{"p":1.0}"#] {
            let err = handle_tree(&parse(body).unwrap()).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
            assert!(err.message.contains("[0.5, 1)"), "{body}: {}", err.message);
        }
        assert!(handle_tree(&parse(r#"{"p":0.5}"#).unwrap()).is_ok());
    }

    #[test]
    fn oversized_et_is_rejected_not_simulated() {
        let err = handle_tree(&parse(r#"{"et":100001}"#).unwrap()).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("too large"), "{}", err.message);
        let cache = PreparedCache::new(8, 2);
        let body = parse(r#"{"workload":"xlisp","et":4000000000}"#).unwrap();
        let err =
            handle_simulate(&cache, &body, far_deadline(), &FaultPlan::inert(), None).unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn uploaded_program_with_static_errors_is_422_with_codes() {
        let cache = PreparedCache::new(8, 2);
        // Parses fine, but reads r1 with no reaching definition anywhere:
        // the assembler accepts it, the analyzer proves it wrong.
        let body = parse(r#"{"program":"out r1\nhalt\n","model":"SP","et":4}"#).unwrap();
        let err =
            handle_simulate(&cache, &body, far_deadline(), &FaultPlan::inert(), None).unwrap_err();
        assert_eq!(err.status, 422, "{}", err.message);
        assert!(
            err.codes.iter().any(|c| c == "DEE-E003"),
            "codes: {:?}",
            err.codes
        );
        let rendered = err.to_json().to_string();
        assert!(rendered.contains("\"codes\""), "{rendered}");
        assert!(rendered.contains("DEE-E003"), "{rendered}");
        // The same gate guards the levo endpoint — one validator, not two.
        let err = handle_levo(&body, far_deadline(), &FaultPlan::inert()).unwrap_err();
        assert_eq!(err.status, 422);
    }

    #[test]
    fn uploaded_program_with_oob_constant_store_is_422() {
        let cache = PreparedCache::new(8, 2);
        // Stores to address 2^20, one past the top of VM memory.
        let body =
            parse(r#"{"program":"li r1, 1048576\nsw r1, 0(r1)\nhalt\n","model":"SP","et":4}"#)
                .unwrap();
        let err =
            handle_simulate(&cache, &body, far_deadline(), &FaultPlan::inert(), None).unwrap_err();
        assert_eq!(err.status, 422, "{}", err.message);
        assert!(
            err.codes.iter().any(|c| c == "DEE-E011"),
            "codes: {:?}",
            err.codes
        );
    }

    #[test]
    fn clean_uploaded_program_passes_the_analyze_gate() {
        let cache = PreparedCache::new(8, 2);
        let body = parse(
            r#"{"program":"lw r1, 0(zero)\nout r1\nhalt\n","memory":[9],"model":"SP","et":4}"#,
        )
        .unwrap();
        let (response, _) =
            handle_simulate(&cache, &body, far_deadline(), &FaultPlan::inert(), None).unwrap();
        assert!(response.get("results").is_some());
    }

    #[test]
    fn injected_analyze_reject_fault_surfaces_as_422() {
        use crate::faults::FaultSpec;
        let cache = PreparedCache::new(8, 2);
        let body = parse(r#"{"workload":"xlisp","scale":"tiny","model":"SP","et":8}"#).unwrap();
        let plan = FaultPlan::new(5).arm(
            FaultSite::AnalyzeReject,
            FaultSpec {
                error_ppm: 1_000_000,
                ..FaultSpec::default()
            },
        );
        let err = handle_simulate(&cache, &body, far_deadline(), &plan, None).unwrap_err();
        assert_eq!(err.status, 422);
        assert!(err.message.contains("analyze_reject"), "{}", err.message);
        assert!(err.codes.is_empty());
    }

    #[test]
    fn injected_cache_lookup_fault_surfaces_as_500() {
        use crate::faults::FaultSpec;
        let cache = PreparedCache::new(8, 2);
        let body = parse(r#"{"workload":"xlisp","scale":"tiny","model":"SP","et":8}"#).unwrap();
        let plan = FaultPlan::new(5).arm(
            FaultSite::CacheLookup,
            FaultSpec {
                error_ppm: 1_000_000,
                ..FaultSpec::default()
            },
        );
        let err = handle_simulate(&cache, &body, far_deadline(), &plan, None).unwrap_err();
        assert_eq!(err.status, 500);
        assert!(err.message.contains("cache_lookup"), "{}", err.message);
    }

    #[test]
    fn injected_prepare_faults_fail_closed_and_do_not_poison_the_cache() {
        use crate::faults::FaultSpec;
        let cache = PreparedCache::new(8, 2);
        let body = parse(r#"{"workload":"xlisp","scale":"tiny","model":"SP","et":8}"#).unwrap();
        for site in [FaultSite::TracePrepare, FaultSite::CacheInsert] {
            let plan = FaultPlan::new(5)
                .arm(
                    site,
                    FaultSpec {
                        error_ppm: 1_000_000,
                        ..FaultSpec::default()
                    },
                )
                .with_fuse(1);
            let err = handle_simulate(&cache, &body, far_deadline(), &plan, None).unwrap_err();
            assert_eq!(err.status, 500, "{}", site.name());
            assert!(err.message.contains(site.name()), "{}", err.message);
            // The failed preparation must not leave a poisoned entry: the
            // fuse burned, so the retry prepares cleanly (a miss, then hits).
            let (_, hit) = handle_simulate(&cache, &body, far_deadline(), &plan, None).unwrap();
            assert!(!hit, "{}: failed insert must not be cached", site.name());
            let (_, hit) = handle_simulate(&cache, &body, far_deadline(), &plan, None).unwrap();
            assert!(hit, "{}", site.name());
            cache.clear();
        }
    }

    #[test]
    fn levo_runs_and_matches_direct_call() {
        let body = parse(r#"{"workload":"xlisp","scale":"tiny","dee_paths":3}"#).unwrap();
        let response = handle_levo(&body, far_deadline(), &FaultPlan::inert()).unwrap();
        let w = dee_workloads::xlisp::build(Scale::Tiny);
        let report = Levo::new(LevoConfig::default())
            .run(&w.program, &w.initial_memory)
            .unwrap();
        assert_eq!(
            response.get("cycles").and_then(Json::as_u64),
            Some(report.cycles)
        );
        assert_eq!(
            response.get("retired").and_then(Json::as_u64),
            Some(report.retired)
        );
        assert_eq!(
            response.get("output_checksum").and_then(Json::as_str),
            Some(format!("{:016x}", dee_vm::output_checksum(&report.output)).as_str())
        );
    }

    #[test]
    fn levo_rejects_invalid_config() {
        let body = parse(r#"{"workload":"xlisp","n":0}"#).unwrap();
        assert_eq!(
            handle_levo(&body, far_deadline(), &FaultPlan::inert())
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn batch_grid_order_is_workloads_models_ets() {
        let body =
            parse(r#"{"workloads":["xlisp","compress"],"models":["SP","Oracle"],"ets":[8,16]}"#)
                .unwrap();
        let cells = parse_batch(&body).unwrap();
        let got: Vec<(String, &str, u32)> = cells
            .iter()
            .map(|c| (c.workload.clone(), c.model.name(), c.et))
            .collect();
        let expect = |w: &str, m: &'static str, et: u32| (w.to_string(), m, et);
        assert_eq!(
            got,
            vec![
                expect("xlisp", "SP", 8),
                expect("xlisp", "SP", 16),
                expect("xlisp", "Oracle", 8),
                expect("xlisp", "Oracle", 16),
                expect("compress", "SP", 8),
                expect("compress", "SP", 16),
                expect("compress", "Oracle", 8),
                expect("compress", "Oracle", 16),
            ]
        );
    }

    #[test]
    fn batch_defaults_to_all_models_and_et_100() {
        let body = parse(r#"{"workloads":["xlisp"]}"#).unwrap();
        let cells = parse_batch(&body).unwrap();
        assert_eq!(cells.len(), 8, "7 constrained models + Oracle");
        assert!(cells.iter().all(|c| c.et == 100));
        assert_eq!(cells.last().unwrap().model, Model::Oracle);
    }

    #[test]
    fn batch_validates_every_axis_upfront() {
        for (body, needle) in [
            (r#"{}"#, "missing `workloads`"),
            (r#"{"workloads":[]}"#, "non-empty"),
            (r#"{"workloads":["nope"]}"#, "unknown workload"),
            (r#"{"workloads":["xlisp"],"scale":"huge"}"#, "unknown scale"),
            (
                r#"{"workloads":["xlisp"],"models":["warp"]}"#,
                "unknown model",
            ),
            (r#"{"workloads":["xlisp"],"ets":[200000]}"#, "too large"),
            (
                r#"{"workloads":["xlisp"],"models":["SP"],"ets":[0]}"#,
                "at least 1",
            ),
            (r#"{"workloads":["xlisp"],"p":1.5}"#, "[0, 1]"),
            (
                r#"{"workloads":["xlisp"],"predictor":"psychic"}"#,
                "unknown predictor",
            ),
            (
                r#"{"workloads":["xlisp"],"latency":"warp"}"#,
                "unknown latency",
            ),
        ] {
            let err = parse_batch(&parse(body).unwrap()).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
            assert!(err.message.contains(needle), "{body}: {}", err.message);
        }
        // Oracle alone tolerates et 0 (it ignores resources anyway).
        let body = parse(r#"{"workloads":["xlisp"],"models":["oracle"],"ets":[0]}"#).unwrap();
        assert_eq!(parse_batch(&body).unwrap().len(), 1);
    }

    #[test]
    fn batch_cell_matches_handle_simulate() {
        let cache = PreparedCache::new(8, 2);
        let body =
            parse(r#"{"workloads":["compress"],"models":["DEE-CD-MF"],"ets":[32]}"#).unwrap();
        let cells = parse_batch(&body).unwrap();
        assert_eq!(cells.len(), 1);
        let (json, hit) =
            run_batch_cell(&cache, &cells[0], far_deadline(), &FaultPlan::inert(), None);
        assert_eq!(hit, Some(false), "first cell prepares");
        let single =
            parse(r#"{"workload":"compress","scale":"tiny","model":"DEE-CD-MF","et":32}"#).unwrap();
        let (expected, _) =
            handle_simulate(&cache, &single, far_deadline(), &FaultPlan::inert(), None).unwrap();
        let want = &expected.get("results").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(
            json.get("result").unwrap().to_string(),
            want.to_string(),
            "a batch cell is byte-identical to the single-shot endpoint"
        );
        assert_eq!(json.get("cache").and_then(Json::as_str), Some("miss"));
        let (json, hit) =
            run_batch_cell(&cache, &cells[0], far_deadline(), &FaultPlan::inert(), None);
        assert_eq!(hit, Some(true), "second run hits the cache");
        assert_eq!(json.get("cache").and_then(Json::as_str), Some("hit"));
    }

    #[test]
    fn batch_cell_failure_is_an_error_member_not_a_panic() {
        use crate::faults::FaultSpec;
        let cache = PreparedCache::new(8, 2);
        let body = parse(r#"{"workloads":["xlisp"],"models":["SP"],"ets":[8]}"#).unwrap();
        let cells = parse_batch(&body).unwrap();
        let plan = FaultPlan::new(5)
            .arm(
                FaultSite::TracePrepare,
                FaultSpec {
                    error_ppm: 1_000_000,
                    ..FaultSpec::default()
                },
            )
            .with_fuse(1);
        let (json, hit) = run_batch_cell(&cache, &cells[0], far_deadline(), &plan, None);
        assert_eq!(hit, None, "cell failed before the cache answered");
        let message = json.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("trace_prepare"), "{message}");
        assert_eq!(json.get("workload").and_then(Json::as_str), Some("xlisp"));
        // The fuse burned; the same cell now runs clean.
        let (json, hit) = run_batch_cell(&cache, &cells[0], far_deadline(), &plan, None);
        assert_eq!(hit, Some(false));
        assert!(json.get("result").is_some());
    }

    #[test]
    fn disk_tier_replays_after_cache_clear_and_keeps_responses_identical() {
        use std::sync::atomic::Ordering;
        let dir = std::env::temp_dir().join(format!("dee_api_store_{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        let cache = PreparedCache::new(8, 2);
        let body = parse(r#"{"workload":"xlisp","scale":"tiny","model":"SP","et":8}"#).unwrap();
        let (first, hit) = handle_simulate(
            &cache,
            &body,
            far_deadline(),
            &FaultPlan::inert(),
            Some(&store),
        )
        .unwrap();
        assert!(!hit);
        assert_eq!(store.stats().misses.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats().writes.load(Ordering::Relaxed), 1);
        // A cleared prepared cache models a restart: the miss now replays
        // the raw trace from disk — visible only in the store counters,
        // never in the response (which must stay byte-identical).
        cache.clear();
        let (second, hit) = handle_simulate(
            &cache,
            &body,
            far_deadline(),
            &FaultPlan::inert(),
            Some(&store),
        )
        .unwrap();
        assert!(!hit, "prepared cache was cleared");
        assert_eq!(second.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(store.stats().disk_hits.load(Ordering::Relaxed), 1);
        assert_eq!(second.to_string(), first.to_string());
        // And a store-less run produces the same bytes again.
        let fresh = PreparedCache::new(8, 2);
        let (storeless, _) =
            handle_simulate(&fresh, &body, far_deadline(), &FaultPlan::inert(), None).unwrap();
        assert_eq!(storeless.to_string(), first.to_string());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn store_faults_degrade_to_retracing_never_fail_the_request() {
        use crate::faults::FaultSpec;
        use std::sync::atomic::Ordering;
        let dir = std::env::temp_dir().join(format!("dee_api_store_faults_{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        let cache = PreparedCache::new(8, 2);
        let body = parse(r#"{"workload":"compress","scale":"tiny","model":"SP","et":8}"#).unwrap();
        let always = FaultSpec {
            error_ppm: 1_000_000,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::new(7)
            .arm(FaultSite::StoreRead, always)
            .arm(FaultSite::StoreWrite, always);
        let (hostile, hit) =
            handle_simulate(&cache, &body, far_deadline(), &plan, Some(&store)).unwrap();
        assert!(!hit);
        assert_eq!(
            store.stats().write_errors.load(Ordering::Relaxed),
            1,
            "tripped write skips the publish"
        );
        assert_eq!(store.stats().writes.load(Ordering::Relaxed), 0);
        assert!(!store.contains(&ArtifactKey::new(
            "compress",
            "tiny",
            &dee_workloads::compress::build(Scale::Tiny)
                .program
                .to_listing(),
            &dee_workloads::compress::build(Scale::Tiny).initial_memory,
        )));
        // Same bytes as a clean, store-less run: faults only degrade.
        let fresh = PreparedCache::new(8, 2);
        let (clean, _) =
            handle_simulate(&fresh, &body, far_deadline(), &FaultPlan::inert(), None).unwrap();
        assert_eq!(hostile.to_string(), clean.to_string());
        std::fs::remove_dir_all(dir).ok();
    }

    /// Steps a machine and all four request predictors through records
    /// `[0, k)` and encodes the resulting `DEESNAP1` snapshot — the
    /// same cut `dee trace record --checkpoint-stride` publishes.
    fn snapshot_bytes_at(source: &Source, k: u64) -> Vec<u8> {
        let mut machine = Machine::new();
        machine.try_load_memory(&source.memory).unwrap();
        let mut predictors: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(TwoBitCounter::new()),
            Box::new(Gshare::new(12, 8)),
            Box::new(PapAdaptive::new()),
            Box::new(AlwaysTaken::new()),
        ];
        for _ in 0..k {
            let (_, record) = machine.step(&source.program).unwrap();
            if let Some(outcome) = record.branch {
                for p in &mut predictors {
                    let _ = p.predict(record.pc);
                    p.resolve(record.pc, outcome.taken);
                }
            }
        }
        let key = artifact_key(source);
        Snapshot {
            trace_format_version: dee_vm::TRACE_FORMAT_VERSION,
            parent_digest: key.digest,
            record_index: k,
            machine: machine.snapshot_state(),
            predictors: predictors
                .iter()
                .map(|p| (p.name().to_string(), p.save_state()))
                .collect(),
            prng_streams: Vec::new(),
        }
        .encode(&source.memory)
    }

    fn range_body(start: u64, end: u64) -> Json {
        parse(&format!(
            r#"{{"workload":"compress","scale":"tiny","model":"SP","et":8,"predictor":"gshare","start":{start},"end":{end}}}"#
        ))
        .unwrap()
    }

    fn compress_source() -> Source {
        let body = parse(r#"{"workload":"compress","scale":"tiny"}"#).unwrap();
        resolve_source(&body, &FaultPlan::inert()).unwrap()
    }

    #[test]
    fn simulate_range_over_the_full_trace_matches_simulate() {
        let metrics = Metrics::new();
        let body = parse(r#"{"workload":"compress","scale":"tiny","model":"SP","et":8,"start":0}"#)
            .unwrap();
        let response =
            handle_simulate_range(&body, far_deadline(), &FaultPlan::inert(), None, &metrics)
                .unwrap();
        let cache = PreparedCache::new(8, 2);
        let single =
            parse(r#"{"workload":"compress","scale":"tiny","model":"SP","et":8}"#).unwrap();
        let (expected, _) =
            handle_simulate(&cache, &single, far_deadline(), &FaultPlan::inert(), None).unwrap();
        assert_eq!(
            response.get("results").unwrap().to_string(),
            expected.get("results").unwrap().to_string(),
            "a [0, end-of-trace) range is the whole trace"
        );
        assert_eq!(
            response.get("p").unwrap().to_string(),
            expected.get("p").unwrap().to_string()
        );
        let records = response.get("records").and_then(Json::as_u64).unwrap();
        assert!(records > 0);
        assert_eq!(
            response.get("end").and_then(Json::as_u64),
            Some(records),
            "start 0 means end == records"
        );
        assert_eq!(metrics.snap_seek_hits.load(Ordering::Relaxed), 0);
        assert_eq!(
            metrics.snap_seek_misses.load(Ordering::Relaxed),
            0,
            "no store means the seek never ran"
        );
    }

    #[test]
    fn simulate_range_warm_start_is_byte_identical_and_counts_a_hit() {
        let dir = std::env::temp_dir().join(format!("dee_api_snap_{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        let source = compress_source();
        let key = artifact_key(&source);
        store
            .put_snapshot(
                &dee_snap::snapshot_filename(&key, 200),
                &snapshot_bytes_at(&source, 200),
            )
            .unwrap();

        let body = range_body(500, 900);
        let cold_metrics = Metrics::new();
        let cold = handle_simulate_range(
            &body,
            far_deadline(),
            &FaultPlan::inert(),
            None,
            &cold_metrics,
        )
        .unwrap();
        let warm_metrics = Metrics::new();
        let warm = handle_simulate_range(
            &body,
            far_deadline(),
            &FaultPlan::inert(),
            Some(&store),
            &warm_metrics,
        )
        .unwrap();
        assert_eq!(
            warm.to_string(),
            cold.to_string(),
            "a warm start must never change the response bytes"
        );
        assert_eq!(warm_metrics.snap_seek_hits.load(Ordering::Relaxed), 1);
        assert_eq!(warm_metrics.snap_seek_misses.load(Ordering::Relaxed), 0);
        assert_eq!(warm_metrics.snap_decode_failures.load(Ordering::Relaxed), 0);
        // The miss path published the artifact, so the next range
        // request streams records from disk — and stays identical.
        assert!(store.contains(&key));
        let streamed = handle_simulate_range(
            &body,
            far_deadline(),
            &FaultPlan::inert(),
            Some(&store),
            &Metrics::new(),
        )
        .unwrap();
        assert_eq!(streamed.to_string(), cold.to_string());
        assert!(store.stats().disk_hits.load(Ordering::Relaxed) >= 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_range_quarantines_a_corrupt_snapshot_and_falls_back() {
        let dir = std::env::temp_dir().join(format!("dee_api_snapcorrupt_{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        let source = compress_source();
        let key = artifact_key(&source);
        let mut bytes = snapshot_bytes_at(&source, 200);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let name = dee_snap::snapshot_filename(&key, 200);
        // put_snapshot verifies framing, so plant the corruption directly.
        std::fs::write(store.root().join(&name), &bytes).unwrap();

        let body = range_body(500, 900);
        let metrics = Metrics::new();
        let hostile = handle_simulate_range(
            &body,
            far_deadline(),
            &FaultPlan::inert(),
            Some(&store),
            &metrics,
        )
        .unwrap();
        let clean = handle_simulate_range(
            &body,
            far_deadline(),
            &FaultPlan::inert(),
            None,
            &Metrics::new(),
        )
        .unwrap();
        assert_eq!(
            hostile.to_string(),
            clean.to_string(),
            "one flipped byte degrades the warm start, never the answer"
        );
        assert_eq!(metrics.snap_seek_hits.load(Ordering::Relaxed), 0);
        assert_eq!(metrics.snap_seek_misses.load(Ordering::Relaxed), 1);
        assert!(
            store.stats().quarantined.load(Ordering::Relaxed) >= 1,
            "the corrupt snapshot was quarantined"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_range_snap_faults_degrade_byte_identically() {
        use crate::faults::FaultSpec;
        let dir = std::env::temp_dir().join(format!("dee_api_snapfault_{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        let source = compress_source();
        let key = artifact_key(&source);
        store
            .put_snapshot(
                &dee_snap::snapshot_filename(&key, 200),
                &snapshot_bytes_at(&source, 200),
            )
            .unwrap();
        let body = range_body(500, 900);
        let clean = handle_simulate_range(
            &body,
            far_deadline(),
            &FaultPlan::inert(),
            None,
            &Metrics::new(),
        )
        .unwrap();
        let always = FaultSpec {
            error_ppm: 1_000_000,
            ..FaultSpec::default()
        };
        for site in [FaultSite::SnapSeek, FaultSite::SnapRead] {
            let plan = FaultPlan::new(11).arm(site, always);
            let metrics = Metrics::new();
            let hostile =
                handle_simulate_range(&body, far_deadline(), &plan, Some(&store), &metrics)
                    .unwrap();
            assert_eq!(hostile.to_string(), clean.to_string(), "{}", site.name());
            assert_eq!(
                metrics.snap_seek_hits.load(Ordering::Relaxed),
                0,
                "{}: a tripped site must not warm-start",
                site.name()
            );
            assert_eq!(metrics.snap_seek_misses.load(Ordering::Relaxed), 1);
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_range_rejects_bad_ranges() {
        let metrics = Metrics::new();
        for (start, end, needle) in [(10u64, 10u64, "greater than"), (10, 5, "greater than")] {
            let body = parse(&format!(
                r#"{{"workload":"compress","scale":"tiny","model":"SP","et":8,"start":{start},"end":{end}}}"#
            ))
            .unwrap();
            let err =
                handle_simulate_range(&body, far_deadline(), &FaultPlan::inert(), None, &metrics)
                    .unwrap_err();
            assert_eq!(err.status, 400);
            assert!(err.message.contains(needle), "{}", err.message);
        }
        // A start past the end of the trace cannot produce records.
        let body = parse(
            r#"{"workload":"compress","scale":"tiny","model":"SP","et":8,"start":999999999}"#,
        )
        .unwrap();
        let err = handle_simulate_range(&body, far_deadline(), &FaultPlan::inert(), None, &metrics)
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("past the end"), "{}", err.message);
    }

    fn debug_request(target: &str) -> crate::http::Request {
        crate::http::Request {
            method: "GET".into(),
            target: target.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn debug_at_time_travel_matches_from_zero_replay() {
        let dir = std::env::temp_dir().join(format!("dee_api_debugat_{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        let source = compress_source();
        let key = artifact_key(&source);
        store
            .put_snapshot(
                &dee_snap::snapshot_filename(&key, 300),
                &snapshot_bytes_at(&source, 300),
            )
            .unwrap();
        let request = debug_request("/debug/at?workload=compress&scale=tiny&record=450");
        let from_zero = handle_debug_at(
            &request,
            far_deadline(),
            &FaultPlan::inert(),
            None,
            &Metrics::new(),
        )
        .unwrap();
        let metrics = Metrics::new();
        let warm = handle_debug_at(
            &request,
            far_deadline(),
            &FaultPlan::inert(),
            Some(&store),
            &metrics,
        )
        .unwrap();
        assert_eq!(
            warm.to_string(),
            from_zero.to_string(),
            "time travel via snapshot equals stepping from record zero"
        );
        assert_eq!(metrics.snap_seek_hits.load(Ordering::Relaxed), 1);
        assert_eq!(from_zero.get("executed").and_then(Json::as_u64), Some(450));
        // And the state really is record 450's: stepping a machine 450
        // times from scratch reproduces the reported pc and checksums.
        let mut machine = Machine::new();
        machine.try_load_memory(&source.memory).unwrap();
        for _ in 0..450 {
            machine.step(&source.program).unwrap();
        }
        assert_eq!(
            from_zero.get("pc").and_then(Json::as_u64),
            Some(u64::from(machine.pc()))
        );
        assert_eq!(
            from_zero.get("output_checksum").and_then(Json::as_str),
            Some(format!("{:016x}", dee_vm::output_checksum(machine.output())).as_str())
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn debug_at_rejects_bad_queries() {
        let metrics = Metrics::new();
        for (target, needle) in [
            ("/debug/at?scale=tiny&record=5", "missing `workload`"),
            ("/debug/at?workload=compress", "missing `record`"),
            ("/debug/at?workload=compress&record=x", "non-negative"),
            ("/debug/at?workload=nope&record=5", "unknown workload"),
            (
                "/debug/at?workload=compress&scale=tiny&record=99999999",
                "past the end",
            ),
        ] {
            let err = handle_debug_at(
                &debug_request(target),
                far_deadline(),
                &FaultPlan::inert(),
                None,
                &metrics,
            )
            .unwrap_err();
            assert_eq!(err.status, 400, "{target}");
            assert!(err.message.contains(needle), "{target}: {}", err.message);
        }
    }
}
