//! SIGINT/SIGTERM notification as a polled flag.
//!
//! The workspace carries no external crates, so instead of the `libc`
//! crate this declares the C `signal(2)` entry point directly — std
//! already links the platform libc, so the symbol is always present on
//! the targets the server supports. The handler only flips an atomic
//! flag (async-signal-safe); the CLI polls [`interrupted`] and runs the
//! actual shutdown on its own thread.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod sys {
    pub(super) type Handler = extern "C" fn(i32);

    extern "C" {
        pub(super) fn signal(signum: i32, handler: super::sys::Handler) -> usize;
    }

    pub(super) fn install(signum: i32, handler: Handler) {
        // SAFETY: `signal` is the C standard library entry point; the
        // handler only touches a static atomic.
        unsafe {
            signal(signum, handler);
        }
    }
}

extern "C" fn on_signal(_signum: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs SIGINT and SIGTERM handlers that set the interrupt flag.
/// Idempotent; later installations simply re-register the same handler.
pub fn install() {
    sys::install(SIGINT, on_signal);
    sys::install(SIGTERM, on_signal);
}

/// Whether an interrupt signal has arrived since [`install`].
#[must_use]
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches() {
        install();
        assert!(!interrupted());
        on_signal(SIGINT);
        assert!(interrupted());
    }
}
