//! A sharded LRU cache of prepared traces.
//!
//! `PreparedTrace::new` — the predictor replay plus CFG/post-dominator
//! analysis — dominates the cost of a simulation request, and parameter
//! sweeps (the Fluid-Petri-Net-style limit studies the service targets)
//! re-query the same workload thousands of times with different models
//! and `E_T` values. Caching the prepared trace by
//! `(program, input memory, predictor)` turns every request after the
//! first into a pure `simulate()` call.
//!
//! Sharding bounds lock contention: a key maps to one of `S` independent
//! `Mutex`-guarded LRU maps, so concurrent workers only serialize when
//! they touch the same shard. Preparation itself runs *outside* the shard
//! lock, and cold keys are *single-flight*: the first worker to miss
//! marks the key pending and prepares it; racing workers for the same
//! key wait on the shard's condvar and are then served from cache (they
//! count as hits — the work was shared, not repeated).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use dee_ilpsim::PreparedTrace;
use dee_isa::Program;

/// FNV-1a 64-bit hash — tiny, dependency-free, stable across runs.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a over a word slice (little-endian), for input-memory images.
#[must_use]
pub fn fnv1a_words(words: &[i32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Cache key: content hashes of the program and its input memory, plus
/// the preparing predictor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// FNV-1a of the program listing.
    pub program: u64,
    /// FNV-1a of the initial-memory image.
    pub memory: u64,
    /// FNV-1a of the predictor name ("twobit", "gshare", ...).
    pub predictor: u64,
}

/// A cached preparation: the program and its prepared trace, shared by
/// reference with every request that hits.
#[derive(Debug)]
pub struct PreparedEntry {
    /// The program the trace was captured from.
    pub program: Program,
    /// The prepared trace (fully owned columnar data).
    pub prepared: PreparedTrace,
}

struct Shard {
    entries: HashMap<CacheKey, (u64, Arc<PreparedEntry>)>,
    /// Keys some worker is currently preparing (single-flight).
    pending: HashSet<CacheKey>,
}

struct ShardState {
    shard: Mutex<Shard>,
    /// Signals waiters when a pending preparation finishes (or fails).
    ready: Condvar,
}

/// The sharded LRU cache.
pub struct PreparedCache {
    shards: Vec<ShardState>,
    per_shard_capacity: usize,
    tick: AtomicU64,
}

/// Clears a key's pending mark when the preparing worker is done — on
/// success, failure, or panic — and wakes every waiter.
struct PendingGuard<'a> {
    state: &'a ShardState,
    key: CacheKey,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.state.lock().pending.remove(&self.key);
        self.state.ready.notify_all();
    }
}

impl ShardState {
    /// Locks the shard, recovering from poisoning: a worker that panicked
    /// while holding the lock cannot have left the map structurally
    /// broken (every mutation is a single HashMap/HashSet call), and
    /// refusing the whole shard forever would turn one bad request into a
    /// denial of service for every key that hashes there.
    fn lock(&self) -> MutexGuard<'_, Shard> {
        self.shard.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl PreparedCache {
    /// Creates a cache holding roughly `total_entries` across `shards`
    /// shards (each shard gets the ceiling share, minimum 1).
    ///
    /// # Panics
    ///
    /// Panics when `total_entries` or `shards` is zero.
    #[must_use]
    pub fn new(total_entries: usize, shards: usize) -> Self {
        assert!(total_entries >= 1, "cache needs at least one entry");
        assert!(shards >= 1, "cache needs at least one shard");
        let per_shard_capacity = total_entries.div_ceil(shards);
        PreparedCache {
            shards: (0..shards)
                .map(|_| ShardState {
                    shard: Mutex::new(Shard {
                        entries: HashMap::new(),
                        pending: HashSet::new(),
                    }),
                    ready: Condvar::new(),
                })
                .collect(),
            per_shard_capacity,
            tick: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &ShardState {
        let mix = key.program ^ key.memory.rotate_left(17) ^ key.predictor.rotate_left(43);
        &self.shards[(mix % self.shards.len() as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key`, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<PreparedEntry>> {
        let mut shard = self.shard(key).lock();
        let tick = self.next_tick();
        shard.entries.get_mut(key).map(|(last_used, entry)| {
            *last_used = tick;
            Arc::clone(entry)
        })
    }

    /// Inserts `entry`, evicting the least-recently-used entry of the
    /// shard when it is at capacity. Returns the shared handle.
    pub fn insert(&self, key: CacheKey, entry: PreparedEntry) -> Arc<PreparedEntry> {
        let entry = Arc::new(entry);
        let mut shard = self.shard(&key).lock();
        if shard.entries.len() >= self.per_shard_capacity && !shard.entries.contains_key(&key) {
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
            }
        }
        let tick = self.next_tick();
        shard.entries.insert(key, (tick, Arc::clone(&entry)));
        entry
    }

    /// Looks up `key`, preparing and inserting on a miss. Returns the
    /// entry and whether it was a hit. Preparation runs outside the shard
    /// lock and is single-flight per key: racing callers block until the
    /// first caller's preparation lands, then read it as a hit. If the
    /// preparation fails, one waiter takes over as the new preparer.
    ///
    /// # Errors
    ///
    /// Propagates the preparation error (program did not parse, VM fault,
    /// ...).
    pub fn get_or_insert_with(
        &self,
        key: CacheKey,
        prepare: impl FnOnce() -> Result<PreparedEntry, String>,
    ) -> Result<(Arc<PreparedEntry>, bool), String> {
        let state = self.shard(&key);
        {
            let mut shard = state.lock();
            loop {
                let tick = self.next_tick();
                if let Some((last_used, entry)) = shard.entries.get_mut(&key) {
                    *last_used = tick;
                    return Ok((Arc::clone(entry), true));
                }
                if !shard.pending.contains(&key) {
                    shard.pending.insert(key);
                    break;
                }
                shard = state
                    .ready
                    .wait(shard)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // We are the single preparer; the guard clears the pending mark
        // and wakes waiters however this exits.
        let _pending = PendingGuard { state, key };
        let entry = prepare()?;
        Ok((self.insert(key, entry), false))
    }

    /// Total entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (pending preparations are unaffected).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().entries.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::{Assembler, Reg};
    use dee_vm::trace_program;

    fn entry(n: i32) -> PreparedEntry {
        let mut asm = Assembler::new();
        asm.li(Reg::new(1), n);
        asm.out(Reg::new(1));
        asm.halt();
        let program = asm.assemble().unwrap();
        let trace = trace_program(&program, &[], 100).unwrap();
        let prepared = PreparedTrace::new(&program, &trace);
        PreparedEntry { program, prepared }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            program: n,
            memory: 0,
            predictor: 0,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = PreparedCache::new(8, 2);
        let (_, hit) = cache.get_or_insert_with(key(1), || Ok(entry(1))).unwrap();
        assert!(!hit);
        let (e, hit) = cache
            .get_or_insert_with(key(1), || panic!("must not prepare"))
            .unwrap();
        assert!(hit);
        assert_eq!(e.prepared.output(), &[1]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn prepare_errors_propagate_and_cache_nothing() {
        let cache = PreparedCache::new(4, 1);
        let err = cache.get_or_insert_with(key(9), || Err("boom".into()));
        assert_eq!(err.err(), Some("boom".to_string()));
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PreparedCache::new(2, 1);
        cache.insert(key(1), entry(1));
        cache.insert(key(2), entry(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), entry(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn fnv_is_stable_and_distinguishes() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a_words(&[1, 2]), fnv1a_words(&[2, 1]));
        assert_eq!(fnv1a_words(&[]), fnv1a(b""));
    }

    #[test]
    fn cold_key_is_prepared_exactly_once_under_contention() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = std::sync::Arc::new(PreparedCache::new(8, 2));
        let preparations = std::sync::Arc::new(AtomicU64::new(0));
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                let preparations = std::sync::Arc::clone(&preparations);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (_, hit) = cache
                        .get_or_insert_with(key(42), || {
                            preparations.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(entry(42))
                        })
                        .unwrap();
                    hit
                })
            })
            .collect();
        let hits = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&hit| hit)
            .count();
        assert_eq!(preparations.load(Ordering::SeqCst), 1, "single-flight");
        assert_eq!(hits, 7, "waiters are served from cache as hits");
    }

    #[test]
    fn failed_preparation_hands_off_to_a_waiter() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = std::sync::Arc::new(PreparedCache::new(8, 2));
        let attempts = std::sync::Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                let attempts = std::sync::Arc::clone(&attempts);
                std::thread::spawn(move || {
                    cache.get_or_insert_with(key(7), || {
                        // First attempt fails; a waiter must retry.
                        if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                            Err("transient".into())
                        } else {
                            Ok(entry(7))
                        }
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
        assert!(results.iter().filter(|r| r.is_ok()).count() >= 1);
        assert!(cache.get(&key(7)).is_some());
    }

    #[test]
    fn sharded_concurrent_access_is_consistent() {
        let cache = std::sync::Arc::new(PreparedCache::new(32, 4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..32u64 {
                        let k = key(i % 8);
                        let (e, _) = cache
                            .get_or_insert_with(k, || Ok(entry((i % 8) as i32)))
                            .unwrap();
                        assert_eq!(e.prepared.output(), &[(i % 8) as i32], "thread {t}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 8);
    }
}
