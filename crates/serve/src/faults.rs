//! Deterministic, seeded fault injection for the serving stack.
//!
//! A [`FaultPlan`] arms named [`FaultSite`]s — queue push/pop, cache
//! lookup/insert, trace preparation, job execution, socket read/write,
//! JSON decode — with per-arrival probabilities of injecting a panic, a
//! spurious error, a short read, or a delay. The plan is compiled in
//! always and threaded through the server unconditionally; an unarmed
//! plan costs one relaxed atomic load per site visit.
//!
//! Injection is *deterministic*: the decision for the n-th arrival at a
//! site is a pure function of `(seed, site, n)`, derived from an
//! xorshift64\*-style mixer, with per-site atomic arrival counters. Two
//! runs that visit each site the same number of times therefore inject
//! the exact same fault sequence regardless of thread interleaving —
//! which is what lets the chaos soak test assert that a storm is
//! reproducible from its seed alone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A named injection point in the serving stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// The accept thread enqueueing a connection.
    QueuePush,
    /// A worker dequeuing a job.
    QueuePop,
    /// Prepared-trace cache lookup.
    CacheLookup,
    /// Prepared-trace cache insert (after a successful preparation).
    CacheInsert,
    /// Trace capture + predictor replay (the expensive miss path).
    TracePrepare,
    /// Worker job execution (the request dispatch itself).
    JobExecute,
    /// A read from the client socket.
    SocketRead,
    /// A write to the client socket.
    SocketWrite,
    /// JSON request-body decoding.
    JsonDecode,
    /// A read (replay) from the disk artifact store.
    StoreRead,
    /// A write (publish) to the disk artifact store.
    StoreWrite,
    /// The static-analysis gate on request program sources (a spurious
    /// `422` rejection).
    AnalyzeReject,
    /// A cluster peer becoming unreachable (gateway forward or
    /// anti-entropy fetch behaves as if the connection was refused).
    PartitionPeer,
    /// A replica dropping out of the routing ring (the gateway treats
    /// the chosen replica as dead and fails over to the next one).
    ReplicaLoss,
    /// A peer answering its store-digest exchange with a stale (empty)
    /// listing, delaying anti-entropy convergence by a round.
    StalePeerStore,
    /// A delay injected ahead of the gateway's hedge decision, forcing
    /// the primary attempt over its latency budget.
    GatewayHedgeDelay,
    /// Lowering a request program into the pre-decoded engine form on the
    /// miss path; a tripped site degrades the capture to the interpreter.
    DecodeCompile,
    /// Seeking the nearest snapshot for a range simulation; a tripped
    /// site behaves as if no snapshot is published (from-zero fallback).
    SnapSeek,
    /// Reading/decoding a found snapshot; a tripped site treats the
    /// bytes as unusable and falls back to from-zero replay.
    SnapRead,
}

impl FaultSite {
    /// Number of sites (array sizes).
    pub const COUNT: usize = 19;

    /// Every site, in index order.
    pub const ALL: [FaultSite; FaultSite::COUNT] = [
        FaultSite::QueuePush,
        FaultSite::QueuePop,
        FaultSite::CacheLookup,
        FaultSite::CacheInsert,
        FaultSite::TracePrepare,
        FaultSite::JobExecute,
        FaultSite::SocketRead,
        FaultSite::SocketWrite,
        FaultSite::JsonDecode,
        FaultSite::StoreRead,
        FaultSite::StoreWrite,
        FaultSite::AnalyzeReject,
        FaultSite::PartitionPeer,
        FaultSite::ReplicaLoss,
        FaultSite::StalePeerStore,
        FaultSite::GatewayHedgeDelay,
        FaultSite::DecodeCompile,
        FaultSite::SnapSeek,
        FaultSite::SnapRead,
    ];

    /// Stable snake_case name, used in metrics labels and panic messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::QueuePush => "queue_push",
            FaultSite::QueuePop => "queue_pop",
            FaultSite::CacheLookup => "cache_lookup",
            FaultSite::CacheInsert => "cache_insert",
            FaultSite::TracePrepare => "trace_prepare",
            FaultSite::JobExecute => "job_execute",
            FaultSite::SocketRead => "socket_read",
            FaultSite::SocketWrite => "socket_write",
            FaultSite::JsonDecode => "json_decode",
            FaultSite::StoreRead => "store_read",
            FaultSite::StoreWrite => "store_write",
            FaultSite::AnalyzeReject => "analyze_reject",
            FaultSite::PartitionPeer => "partition_peer",
            FaultSite::ReplicaLoss => "replica_loss",
            FaultSite::StalePeerStore => "stale_peer_store",
            FaultSite::GatewayHedgeDelay => "gateway_hedge_delay",
            FaultSite::DecodeCompile => "decode_compile",
            FaultSite::SnapSeek => "snap_seek",
            FaultSite::SnapRead => "snap_read",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::QueuePush => 0,
            FaultSite::QueuePop => 1,
            FaultSite::CacheLookup => 2,
            FaultSite::CacheInsert => 3,
            FaultSite::TracePrepare => 4,
            FaultSite::JobExecute => 5,
            FaultSite::SocketRead => 6,
            FaultSite::SocketWrite => 7,
            FaultSite::JsonDecode => 8,
            FaultSite::StoreRead => 9,
            FaultSite::StoreWrite => 10,
            FaultSite::AnalyzeReject => 11,
            FaultSite::PartitionPeer => 12,
            FaultSite::ReplicaLoss => 13,
            FaultSite::StalePeerStore => 14,
            FaultSite::GatewayHedgeDelay => 15,
            FaultSite::DecodeCompile => 16,
            FaultSite::SnapSeek => 17,
            FaultSite::SnapRead => 18,
        }
    }
}

/// A fault the call site must act on itself. Panics and delays are
/// applied inside [`FaultPlan::trip`]; errors and short reads cannot be
/// (only the site knows what "fail" or "read less" means there).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Injected {
    /// The site should fail with a spurious error.
    Error,
    /// The site should read/deliver as little as possible this call.
    ShortRead,
}

/// Per-site arming, in parts-per-million per arrival. Ranges are
/// evaluated in order: panic, error, short read, delay; their ppm values
/// should sum to at most 1,000,000.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Probability of panicking at the site.
    pub panic_ppm: u32,
    /// Probability of a spurious error.
    pub error_ppm: u32,
    /// Probability of a short read (meaningful for socket reads).
    pub short_read_ppm: u32,
    /// Probability of sleeping `delay_ms` at the site.
    pub delay_ppm: u32,
    /// Injected delay length, in milliseconds.
    pub delay_ms: u64,
}

impl FaultSpec {
    fn is_inert(self) -> bool {
        self.panic_ppm == 0
            && self.error_ppm == 0
            && self.short_read_ppm == 0
            && self.delay_ppm == 0
    }
}

/// A seeded fault-injection plan. See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    armed: AtomicBool,
    specs: [FaultSpec; FaultSite::COUNT],
    /// Cap on total injections across all sites; 0 means unlimited. Once
    /// spent, the plan behaves as if disarmed (the "fuse" lets tests
    /// inject exactly one panic and then run clean).
    fuse: u64,
    arrivals: [AtomicU64; FaultSite::COUNT],
    injected: [AtomicU64; FaultSite::COUNT],
    injected_total: AtomicU64,
}

/// One xorshift64\*-style mixing step (also the finalizer of splitmix64).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultPlan {
    /// A plan with every site unarmed and injection disabled.
    #[must_use]
    pub fn inert() -> Self {
        let mut plan = Self::new(0);
        plan.armed = AtomicBool::new(false);
        plan
    }

    /// A seeded plan with every site unarmed; arm sites with
    /// [`arm`](Self::arm).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            armed: AtomicBool::new(true),
            specs: [FaultSpec::default(); FaultSite::COUNT],
            fuse: 0,
            arrivals: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            injected_total: AtomicU64::new(0),
        }
    }

    /// Arms one site (builder style).
    #[must_use]
    pub fn arm(mut self, site: FaultSite, spec: FaultSpec) -> Self {
        self.specs[site.index()] = spec;
        self
    }

    /// Caps total injections at `n` (builder style); 0 means unlimited.
    #[must_use]
    pub fn with_fuse(mut self, n: u64) -> Self {
        self.fuse = n;
        self
    }

    /// The canonical hostile storm used by the chaos soak test and
    /// `dee serve --chaos-seed`. Every site is armed, but socket writes
    /// only get delays (an injected write failure would destroy the
    /// response, and the storm's contract is that every connection still
    /// receives a syntactically valid HTTP response).
    #[must_use]
    pub fn hostile(seed: u64) -> Self {
        let delay = |ppm| FaultSpec {
            delay_ppm: ppm,
            delay_ms: 1,
            ..FaultSpec::default()
        };
        FaultPlan::new(seed)
            .arm(
                FaultSite::QueuePush,
                FaultSpec {
                    error_ppm: 20_000,
                    delay_ppm: 20_000,
                    delay_ms: 1,
                    ..FaultSpec::default()
                },
            )
            .arm(FaultSite::QueuePop, delay(20_000))
            .arm(
                FaultSite::CacheLookup,
                FaultSpec {
                    error_ppm: 10_000,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::CacheInsert,
                FaultSpec {
                    panic_ppm: 5_000,
                    error_ppm: 10_000,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::TracePrepare,
                FaultSpec {
                    panic_ppm: 5_000,
                    error_ppm: 10_000,
                    delay_ppm: 10_000,
                    delay_ms: 2,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::JobExecute,
                FaultSpec {
                    panic_ppm: 10_000,
                    error_ppm: 20_000,
                    delay_ppm: 50_000,
                    delay_ms: 1,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::SocketRead,
                FaultSpec {
                    error_ppm: 10_000,
                    short_read_ppm: 50_000,
                    delay_ppm: 20_000,
                    delay_ms: 1,
                    ..FaultSpec::default()
                },
            )
            .arm(FaultSite::SocketWrite, delay(20_000))
            .arm(
                FaultSite::JsonDecode,
                FaultSpec {
                    error_ppm: 10_000,
                    ..FaultSpec::default()
                },
            )
            // Store faults degrade, never fail: a tripped read skips the
            // disk tier (re-trace), a tripped write skips the publish.
            .arm(
                FaultSite::StoreRead,
                FaultSpec {
                    error_ppm: 100_000,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::StoreWrite,
                FaultSpec {
                    error_ppm: 100_000,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::AnalyzeReject,
                FaultSpec {
                    error_ppm: 10_000,
                    ..FaultSpec::default()
                },
            )
            // A tripped decode-compile degrades the miss path to the
            // interpreter; the response bytes must not change.
            .arm(
                FaultSite::DecodeCompile,
                FaultSpec {
                    error_ppm: 100_000,
                    ..FaultSpec::default()
                },
            )
            // Snapshot faults degrade, never fail: a tripped seek runs
            // the range from zero, a tripped read discards the snapshot
            // bytes and does the same. Responses must not change.
            .arm(
                FaultSite::SnapSeek,
                FaultSpec {
                    error_ppm: 100_000,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::SnapRead,
                FaultSpec {
                    error_ppm: 100_000,
                    ..FaultSpec::default()
                },
            )
    }

    /// The cluster-level storm: [`hostile`](Self::hostile) plus the four
    /// cluster sites armed. Partition and replica-loss faults are errors
    /// (the gateway and anti-entropy treat them as unreachable peers and
    /// must fail over); a stale peer store degrades a digest exchange to
    /// an empty listing; the hedge-delay site only delays, pushing the
    /// primary attempt over its latency budget so hedges actually fire
    /// mid-soak.
    #[must_use]
    pub fn cluster_hostile(seed: u64) -> Self {
        Self::hostile(seed)
            .arm(
                FaultSite::PartitionPeer,
                FaultSpec {
                    error_ppm: 60_000,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::ReplicaLoss,
                FaultSpec {
                    error_ppm: 40_000,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::StalePeerStore,
                FaultSpec {
                    error_ppm: 100_000,
                    ..FaultSpec::default()
                },
            )
            .arm(
                FaultSite::GatewayHedgeDelay,
                FaultSpec {
                    delay_ppm: 80_000,
                    delay_ms: 2,
                    ..FaultSpec::default()
                },
            )
    }

    /// The seed the plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Permanently disables injection (arrival counters stop advancing).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Whether the plan can still inject.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// The deterministic decision for `arrival` at `site`: a roll in
    /// `[0, 1_000_000)`.
    fn roll(&self, site: FaultSite, arrival: u64) -> u64 {
        let salt = (site.index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        mix(mix(self.seed ^ salt).wrapping_add(mix(arrival.wrapping_add(1)))) % 1_000_000
    }

    /// Visits `site`: possibly sleeps (delay) or panics in place, or
    /// returns an [`Injected`] fault for the caller to act on. Returns
    /// `None` — at the cost of a single atomic load — when the plan is
    /// disarmed or the site is not armed.
    ///
    /// # Panics
    ///
    /// Panics deliberately when the deterministic roll lands in the
    /// site's `panic_ppm` range. That is the point.
    pub fn trip(&self, site: FaultSite) -> Option<Injected> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let i = site.index();
        let spec = self.specs[i];
        if spec.is_inert() {
            return None;
        }
        let arrival = self.arrivals[i].fetch_add(1, Ordering::Relaxed);
        let roll = self.roll(site, arrival);
        let panic_end = u64::from(spec.panic_ppm);
        let error_end = panic_end + u64::from(spec.error_ppm);
        let short_end = error_end + u64::from(spec.short_read_ppm);
        let delay_end = short_end + u64::from(spec.delay_ppm);
        if roll >= delay_end {
            return None;
        }
        // Something fires — burn one unit of fuse, or refuse if spent.
        if self.fuse > 0 && self.injected_total.fetch_add(1, Ordering::Relaxed) >= self.fuse {
            return None;
        }
        if self.fuse == 0 {
            self.injected_total.fetch_add(1, Ordering::Relaxed);
        }
        self.injected[i].fetch_add(1, Ordering::Relaxed);
        if roll < panic_end {
            panic!("injected fault: panic at {}", site.name());
        } else if roll < error_end {
            Some(Injected::Error)
        } else if roll < short_end {
            Some(Injected::ShortRead)
        } else {
            std::thread::sleep(Duration::from_millis(spec.delay_ms));
            None
        }
    }

    /// Injections performed at `site` so far.
    #[must_use]
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Armed arrivals observed at `site` so far (the determinism check
    /// compares these alongside the injection counts: same seed and same
    /// traffic must mean same arrivals *and* same injections).
    #[must_use]
    pub fn arrivals_at(&self, site: FaultSite) -> u64 {
        self.arrivals[site.index()].load(Ordering::Relaxed)
    }

    /// Total injections performed.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.injected_at(s)).sum()
    }

    /// Prometheus text exposition of the per-site injection counters,
    /// appended to the server's `/metrics` output.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(640);
        let _ = writeln!(
            out,
            "# HELP dee_faults_injected_total Faults injected by the armed FaultPlan."
        );
        let _ = writeln!(out, "# TYPE dee_faults_injected_total counter");
        for site in FaultSite::ALL {
            let _ = writeln!(
                out,
                "dee_faults_injected_total{{site=\"{}\"}} {}",
                site.name(),
                self.injected_at(site)
            );
        }
        let _ = writeln!(out, "# TYPE dee_fault_plan_armed gauge");
        let _ = writeln!(out, "dee_fault_plan_armed {}", u64::from(self.is_armed()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always(kind: &str) -> FaultSpec {
        match kind {
            "panic" => FaultSpec {
                panic_ppm: 1_000_000,
                ..FaultSpec::default()
            },
            "error" => FaultSpec {
                error_ppm: 1_000_000,
                ..FaultSpec::default()
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn inert_plan_never_injects() {
        let plan = FaultPlan::inert();
        for _ in 0..1000 {
            assert_eq!(plan.trip(FaultSite::JobExecute), None);
        }
        assert_eq!(plan.injected_total(), 0);
    }

    #[test]
    fn unarmed_site_never_injects_even_on_armed_plan() {
        let plan = FaultPlan::new(7).arm(FaultSite::JobExecute, always("error"));
        assert_eq!(plan.trip(FaultSite::CacheLookup), None);
        assert_eq!(plan.trip(FaultSite::JobExecute), Some(Injected::Error));
    }

    #[test]
    fn same_seed_same_sequence_different_seed_differs() {
        let spec = FaultSpec {
            error_ppm: 300_000,
            short_read_ppm: 200_000,
            delay_ppm: 0,
            ..FaultSpec::default()
        };
        let a = FaultPlan::new(42).arm(FaultSite::SocketRead, spec);
        let b = FaultPlan::new(42).arm(FaultSite::SocketRead, spec);
        let c = FaultPlan::new(43).arm(FaultSite::SocketRead, spec);
        let seq = |p: &FaultPlan| -> Vec<Option<Injected>> {
            (0..256).map(|_| p.trip(FaultSite::SocketRead)).collect()
        };
        let (sa, sb, sc) = (seq(&a), seq(&b), seq(&c));
        assert_eq!(sa, sb, "same seed must replay the same fault sequence");
        assert_ne!(sa, sc, "different seeds must diverge");
        assert!(sa.iter().any(Option::is_some), "spec must actually fire");
        assert_eq!(a.injected_total(), b.injected_total());
    }

    #[test]
    fn panic_spec_panics_with_site_name() {
        let plan = FaultPlan::new(1).arm(FaultSite::TracePrepare, always("panic"));
        let err = std::panic::catch_unwind(|| plan.trip(FaultSite::TracePrepare)).unwrap_err();
        let message = err.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("trace_prepare"), "{message}");
        assert_eq!(plan.injected_at(FaultSite::TracePrepare), 1);
    }

    #[test]
    fn disarm_stops_injection() {
        let plan = FaultPlan::new(5).arm(FaultSite::JobExecute, always("error"));
        assert_eq!(plan.trip(FaultSite::JobExecute), Some(Injected::Error));
        plan.disarm();
        assert_eq!(plan.trip(FaultSite::JobExecute), None);
        assert_eq!(plan.injected_total(), 1);
    }

    #[test]
    fn fuse_caps_total_injections() {
        let plan = FaultPlan::new(9)
            .arm(FaultSite::JobExecute, always("error"))
            .with_fuse(2);
        let fired: usize = (0..100)
            .filter(|_| plan.trip(FaultSite::JobExecute).is_some())
            .count();
        assert_eq!(fired, 2);
        assert_eq!(plan.injected_at(FaultSite::JobExecute), 2);
    }

    #[test]
    fn hostile_plan_fires_on_every_site_except_write_errors() {
        let plan = FaultPlan::cluster_hostile(0xC0FFEE);
        for site in FaultSite::ALL {
            let mut outcomes = Vec::new();
            for _ in 0..4000 {
                outcomes.push(std::panic::catch_unwind(|| plan.trip(site)));
            }
            assert!(
                plan.injected_at(site) > 0,
                "hostile plan never fired at {}",
                site.name()
            );
            if site == FaultSite::SocketWrite || site == FaultSite::GatewayHedgeDelay {
                assert!(
                    outcomes.iter().all(|o| matches!(o, Ok(None))),
                    "{} must only be delayed, never failed",
                    site.name()
                );
            }
        }
    }

    #[test]
    fn plain_hostile_leaves_cluster_sites_unarmed() {
        let plan = FaultPlan::hostile(0xC0FFEE);
        for site in [
            FaultSite::PartitionPeer,
            FaultSite::ReplicaLoss,
            FaultSite::StalePeerStore,
            FaultSite::GatewayHedgeDelay,
        ] {
            for _ in 0..500 {
                assert_eq!(plan.trip(site), None, "{} armed in hostile()", site.name());
            }
            assert_eq!(plan.arrivals_at(site), 0, "unarmed sites must not count");
        }
    }

    #[test]
    fn metrics_exposition_lists_every_site() {
        let plan = FaultPlan::new(3).arm(FaultSite::JsonDecode, always("error"));
        let _ = plan.trip(FaultSite::JsonDecode);
        let text = plan.render_metrics();
        for site in FaultSite::ALL {
            assert!(
                text.contains(&format!("site=\"{}\"", site.name())),
                "{text}"
            );
        }
        assert!(text.contains("dee_faults_injected_total{site=\"json_decode\"} 1"));
        assert!(text.contains("dee_fault_plan_armed 1"));
    }
}
