//! A hand-rolled JSON value type, parser, and emitter.
//!
//! The repo carries no external crates, so — like `dee-bench` hand-rolls
//! its SVG plots — the server hand-rolls the little JSON it needs. The
//! emitter is deterministic (object members keep insertion order, integral
//! numbers print without a decimal point), which lets tests compare
//! response payloads byte for byte.

use std::fmt;

/// Maximum container nesting the parser accepts. The parser is
/// recursive, so unbounded nesting lets a small hostile body (`[[[[...`)
/// overflow the thread stack — an abort `catch_unwind` cannot contain.
/// Real request bodies nest two or three levels.
const MAX_DEPTH: usize = 64;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if integral.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for object values.
    #[must_use]
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for string values.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses a JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        for doc in [
            r#"{"a":1,"b":[1,2.5,-3],"c":{"nested":true},"d":null,"e":"x\ny"}"#,
            r#"[{"k":"v"},[],{},"",0]"#,
            "123456789012345",
        ] {
            let parsed = parse(doc).expect("parses");
            assert_eq!(parsed.to_string(), doc);
        }
    }

    #[test]
    fn integral_numbers_print_without_point() {
        assert_eq!(Json::Num(32.0).to_string(), "32");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"name":"xlisp","et":32,"flag":true,"arr":[1,2]}"#).unwrap();
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("xlisp"));
        assert_eq!(doc.get("et").and_then(Json::as_u64), Some(32));
        assert_eq!(doc.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("arr").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // One past the limit fails cleanly...
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // ...and a pathological 100k-deep bomb must not crash the process.
        let bomb = "{\"a\":".repeat(100_000) + "1" + &"}".repeat(100_000);
        assert!(parse(&bomb).is_err());
        // At the limit still parses.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line\n\"quoted\"\t\\slash\u{1}".into());
        let parsed = parse(&original.to_string()).unwrap();
        assert_eq!(parsed, original);
    }
}
