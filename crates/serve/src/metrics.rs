//! Lock-free service metrics: atomic counters, gauges, and a fixed-bucket
//! latency histogram, rendered in a Prometheus-compatible text format at
//! `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Histogram bucket upper bounds, in microseconds. The last implicit
/// bucket is `+Inf`.
const LATENCY_BOUNDS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000, 2_000_000,
];

/// A fixed-bucket latency histogram with atomic counters.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// The server's metrics registry. Every field is updated with relaxed
/// atomics — the numbers are monitoring data, not synchronization.
#[derive(Debug)]
pub struct Metrics {
    /// Requests fully parsed and routed.
    pub requests: AtomicU64,
    /// `2xx` responses.
    pub responses_ok: AtomicU64,
    /// `4xx` responses.
    pub responses_client_error: AtomicU64,
    /// `5xx` responses (excluding queue-full rejections).
    pub responses_server_error: AtomicU64,
    /// Connections shed with `503 queue full` before queueing.
    pub rejected_queue_full: AtomicU64,
    /// Requests answered `504` because their deadline passed.
    pub timeouts: AtomicU64,
    /// Connections answered `408` because the whole-request read budget
    /// ran out (slow-loris defense).
    pub read_timeouts: AtomicU64,
    /// Panics caught at the job-execution boundary and converted to
    /// `500` responses.
    pub panics_caught: AtomicU64,
    /// Workers respawned by the supervisor after dying or recycling.
    pub worker_respawns: AtomicU64,
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: AtomicU64,
    /// Jobs fast-failed with `503` because a worker's breaker was open.
    pub breaker_fast_fails: AtomicU64,
    /// Prepared-trace cache hits.
    pub cache_hits: AtomicU64,
    /// Prepared-trace cache misses (preparations performed).
    pub cache_misses: AtomicU64,
    /// `POST /batch` grids fanned across the worker pool.
    pub batch_requests: AtomicU64,
    /// Batch grid cells executed (including per-cell failures).
    pub batch_cells: AtomicU64,
    /// Batch grids shed with `503` for exceeding `max_batch_cells`.
    pub batch_rejected_oversize: AtomicU64,
    /// Requests answered `422` because static analysis rejected the
    /// submitted program.
    pub analyze_rejects: AtomicU64,
    /// Range simulations warm-started from a published snapshot.
    pub snap_seek_hits: AtomicU64,
    /// Range simulations that replayed from record zero (no usable
    /// snapshot, or an injected snap fault degraded the warm start).
    pub snap_seek_misses: AtomicU64,
    /// Snapshots found but discarded (decode failure, digest mismatch,
    /// missing predictor state, or an injected `snap_read` fault).
    pub snap_decode_failures: AtomicU64,
    /// Nanoseconds spent replaying records between the snapshot cut and
    /// the range start (the warm-start tail replay).
    pub snap_replay_nanos: AtomicU64,
    /// Highest queue depth observed.
    pub queue_depth_highwater: AtomicU64,
    /// End-to-end request latency (read → response flushed).
    pub latency: Histogram,
    started: Instant,
}

impl Metrics {
    /// Creates a zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            responses_client_error: AtomicU64::new(0),
            responses_server_error: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_fast_fails: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            batch_cells: AtomicU64::new(0),
            batch_rejected_oversize: AtomicU64::new(0),
            analyze_rejects: AtomicU64::new(0),
            snap_seek_hits: AtomicU64::new(0),
            snap_seek_misses: AtomicU64::new(0),
            snap_decode_failures: AtomicU64::new(0),
            snap_replay_nanos: AtomicU64::new(0),
            queue_depth_highwater: AtomicU64::new(0),
            latency: Histogram::new(),
            started: Instant::now(),
        }
    }

    /// Raises the queue-depth high-water mark to `depth` if higher.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth_highwater
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Counts a response by status class.
    pub fn count_response(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition, plus caller-supplied gauges
    /// (current queue depth, cache entries, worker count, ...).
    #[must_use]
    pub fn render(&self, gauges: &[(&str, u64)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        counter(
            "dee_requests_total",
            "Requests parsed and routed.",
            load(&self.requests),
        );
        counter(
            "dee_responses_ok_total",
            "2xx responses.",
            load(&self.responses_ok),
        );
        counter(
            "dee_responses_client_error_total",
            "4xx responses.",
            load(&self.responses_client_error),
        );
        counter(
            "dee_responses_server_error_total",
            "5xx responses (excluding queue-full rejections).",
            load(&self.responses_server_error),
        );
        counter(
            "dee_rejected_queue_full_total",
            "Connections shed with 503 before queueing.",
            load(&self.rejected_queue_full),
        );
        counter(
            "dee_timeouts_total",
            "Requests past their deadline.",
            load(&self.timeouts),
        );
        counter(
            "dee_read_timeouts_total",
            "Connections whose whole-request read budget ran out (408).",
            load(&self.read_timeouts),
        );
        counter(
            "dee_panics_caught_total",
            "Panics caught at the job boundary and answered as 500.",
            load(&self.panics_caught),
        );
        counter(
            "dee_worker_respawns_total",
            "Workers respawned by the supervisor.",
            load(&self.worker_respawns),
        );
        counter(
            "dee_breaker_trips_total",
            "Circuit-breaker trips to the open state.",
            load(&self.breaker_trips),
        );
        counter(
            "dee_breaker_fast_fails_total",
            "Jobs fast-failed 503 while a worker breaker was open.",
            load(&self.breaker_fast_fails),
        );
        counter(
            "dee_prepared_cache_hits_total",
            "Prepared-trace cache hits.",
            load(&self.cache_hits),
        );
        counter(
            "dee_prepared_cache_misses_total",
            "Prepared-trace cache misses.",
            load(&self.cache_misses),
        );
        counter(
            "dee_batch_requests_total",
            "POST /batch grids fanned across the worker pool.",
            load(&self.batch_requests),
        );
        counter(
            "dee_batch_cells_total",
            "Batch grid cells executed.",
            load(&self.batch_cells),
        );
        counter(
            "dee_batch_rejected_oversize_total",
            "Batch grids shed 503 for exceeding max_batch_cells.",
            load(&self.batch_rejected_oversize),
        );
        counter(
            "dee_analyze_rejects_total",
            "Requests answered 422 after static analysis rejected the program.",
            load(&self.analyze_rejects),
        );
        counter(
            "dee_snap_seek_hits_total",
            "Range simulations warm-started from a snapshot.",
            load(&self.snap_seek_hits),
        );
        counter(
            "dee_snap_seek_misses_total",
            "Range simulations replayed from record zero.",
            load(&self.snap_seek_misses),
        );
        counter(
            "dee_snap_decode_failures_total",
            "Snapshots found but discarded as unusable.",
            load(&self.snap_decode_failures),
        );
        counter(
            "dee_snap_replay_nanos_total",
            "Nanoseconds replaying records from snapshot cut to range start.",
            load(&self.snap_replay_nanos),
        );
        counter(
            "dee_queue_depth_highwater",
            "Highest job-queue depth observed.",
            load(&self.queue_depth_highwater),
        );
        for (name, value) in gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(out, "# TYPE dee_request_latency_us histogram");
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BOUNDS_US.iter().enumerate() {
            cumulative += self.latency.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "dee_request_latency_us_bucket{{le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.latency.buckets[LATENCY_BOUNDS_US.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "dee_request_latency_us_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "dee_request_latency_us_sum {}",
            self.latency.sum_us.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "dee_request_latency_us_count {}", self.latency.count());
        let _ = writeln!(out, "# TYPE dee_uptime_seconds gauge");
        let _ = writeln!(
            out,
            "dee_uptime_seconds {}",
            self.started.elapsed().as_secs()
        );
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_totals() {
        let h = Histogram::new();
        h.record_us(50);
        h.record_us(150);
        h.record_us(10_000_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 1);
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 1);
        assert_eq!(
            h.buckets[LATENCY_BOUNDS_US.len()].load(Ordering::Relaxed),
            1
        );
        assert_eq!(h.sum_us.load(Ordering::Relaxed), 10_000_200);
    }

    #[test]
    fn render_contains_counters_and_gauges() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.count_response(200);
        m.count_response(404);
        m.count_response(503);
        m.latency.record_us(777);
        m.observe_queue_depth(5);
        m.observe_queue_depth(2);
        let text = m.render(&[("dee_queue_depth", 1), ("dee_workers", 4)]);
        assert!(text.contains("dee_requests_total 3"));
        assert!(text.contains("dee_prepared_cache_hits_total 2"));
        assert!(text.contains("dee_responses_ok_total 1"));
        assert!(text.contains("dee_responses_client_error_total 1"));
        assert!(text.contains("dee_responses_server_error_total 1"));
        assert!(text.contains("dee_queue_depth_highwater 5"));
        assert!(text.contains("dee_queue_depth 1"));
        assert!(text.contains("dee_workers 4"));
        assert!(text.contains("dee_request_latency_us_bucket{le=\"1000\"} 1"));
        assert!(text.contains("dee_request_latency_us_count 1"));
    }

    #[test]
    fn render_exposes_robustness_counters() {
        let m = Metrics::new();
        m.panics_caught.fetch_add(2, Ordering::Relaxed);
        m.worker_respawns.fetch_add(3, Ordering::Relaxed);
        m.breaker_trips.fetch_add(1, Ordering::Relaxed);
        m.breaker_fast_fails.fetch_add(4, Ordering::Relaxed);
        m.read_timeouts.fetch_add(5, Ordering::Relaxed);
        let text = m.render(&[]);
        assert!(text.contains("dee_panics_caught_total 2"));
        assert!(text.contains("dee_worker_respawns_total 3"));
        assert!(text.contains("dee_breaker_trips_total 1"));
        assert!(text.contains("dee_breaker_fast_fails_total 4"));
        assert!(text.contains("dee_read_timeouts_total 5"));
    }

    #[test]
    fn render_exposes_batch_counters() {
        let m = Metrics::new();
        m.batch_requests.fetch_add(2, Ordering::Relaxed);
        m.batch_cells.fetch_add(48, Ordering::Relaxed);
        m.batch_rejected_oversize.fetch_add(1, Ordering::Relaxed);
        let text = m.render(&[]);
        assert!(text.contains("dee_batch_requests_total 2"));
        assert!(text.contains("dee_batch_cells_total 48"));
        assert!(text.contains("dee_batch_rejected_oversize_total 1"));
    }

    #[test]
    fn render_exposes_snap_counters() {
        let m = Metrics::new();
        m.snap_seek_hits.fetch_add(3, Ordering::Relaxed);
        m.snap_seek_misses.fetch_add(2, Ordering::Relaxed);
        m.snap_decode_failures.fetch_add(1, Ordering::Relaxed);
        m.snap_replay_nanos.fetch_add(640, Ordering::Relaxed);
        let text = m.render(&[]);
        assert!(text.contains("dee_snap_seek_hits_total 3"));
        assert!(text.contains("dee_snap_seek_misses_total 2"));
        assert!(text.contains("dee_snap_decode_failures_total 1"));
        assert!(text.contains("dee_snap_replay_nanos_total 640"));
    }

    #[test]
    fn render_exposes_analyze_rejects() {
        let m = Metrics::new();
        m.analyze_rejects.fetch_add(7, Ordering::Relaxed);
        let text = m.render(&[]);
        assert!(text.contains("dee_analyze_rejects_total 7"));
    }
}
