//! A minimal HTTP/1.1 subset: enough to read one request and write one
//! response per connection.
//!
//! The server speaks `Connection: close` semantics — one request per TCP
//! connection — which keeps the worker-pool accounting exact (a queued
//! connection is exactly one unit of work) and avoids head-of-line
//! blocking a keep-alive connection would introduce on a bounded pool.

use std::io::{self, BufRead, Write};

/// Cap on the request line + headers, to bound memory per connection.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path plus optional query).
    pub target: String,
    /// Header name/value pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component (query string stripped).
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The value of query parameter `name`, when the target carries a
    /// `?key=value&...` query string. No percent-decoding — the debug
    /// endpoints only take identifiers and integers.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let (_, query) = self.target.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// Case-insensitive header lookup.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request (maps to `400 Bad Request`).
    BadRequest(String),
    /// Head or body exceeded the configured caps (`413`).
    TooLarge,
    /// Transport failure (connection reset, timeout, ...).
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request. Returns `Ok(None)` when the peer closed the
/// connection before sending anything.
///
/// # Errors
///
/// [`HttpError::BadRequest`] on malformed syntax, [`HttpError::TooLarge`]
/// when the head or the declared body exceeds its cap, [`HttpError::Io`]
/// on transport failures.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Option<Request>, HttpError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "bad request line `{}`",
            line.trim_end()
        )));
    }

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(HttpError::BadRequest("truncated headers".into()));
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HttpError::BadRequest(format!("bad header `{trimmed}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| HttpError::BadRequest("bad content-length".into()))?
        .unwrap_or(0);
    if content_length > max_body_bytes {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        target,
        headers,
        body,
    }))
}

/// The reason phrase for the status codes the server emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_reason(status),
        content_type,
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let raw = "POST /simulate?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nbody";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/simulate");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::TooLarge)));
    }

    #[test]
    fn status_reasons_cover_emitted_codes() {
        for (code, reason) in [
            (408, "Request Timeout"),
            (422, "Unprocessable Entity"),
            (500, "Internal Server Error"),
            (503, "Service Unavailable"),
        ] {
            assert_eq!(status_reason(code), reason);
        }
    }

    #[test]
    fn response_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
