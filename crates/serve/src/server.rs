//! The resident simulation server: accept loop, supervised worker pool,
//! dispatch.
//!
//! One TCP connection carries exactly one request (`Connection: close`),
//! so the bounded job queue measures load in whole requests. The accept
//! thread never blocks on the queue — at capacity it answers
//! `503 queue full` inline and moves on, which keeps accept latency flat
//! under overload and makes backpressure observable to clients instead
//! of silent.
//!
//! # Failure containment
//!
//! Request dispatch runs inside `catch_unwind`: a panicking simulation
//! job answers *that client* with a structured `500` body instead of
//! killing the worker silently. The worker then recycles itself — a
//! panic is treated as grounds to discard the thread's state — and a
//! supervisor thread detects the dead worker and respawns it (counted in
//! `dee_worker_respawns_total`). Each worker also carries a
//! consecutive-failure circuit breaker: after `breaker_threshold`
//! consecutive `500`s it trips open and fast-fails jobs with `503` until
//! a cooldown passes, then half-opens for a single trial job. All
//! failure paths can be exercised deterministically through the
//! [`FaultPlan`](crate::faults::FaultPlan) wired into [`ServerConfig`].

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::api;
use crate::cache::PreparedCache;
use crate::faults::{FaultPlan, FaultSite};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::{parse as parse_json, Json};
use crate::metrics::Metrics;
use crate::queue::{Bounded, TryPushError};
use crate::stream::GuardedStream;

/// Tuning knobs for [`Server::spawn`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads. `0` spawns no workers — accepted jobs queue until
    /// the queue fills, a deterministic seam for backpressure tests.
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it connections get `503`.
    pub queue_capacity: usize,
    /// Total prepared-trace cache entries across all shards.
    pub cache_entries: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Default per-request deadline, measured from accept time. Requests
    /// may tighten it with a `deadline_ms` body field.
    pub default_deadline: Duration,
    /// Whole-request wall-clock budget for reading the head + body. A
    /// slow-loris client trickling bytes cannot hold a worker past this.
    pub read_budget: Duration,
    /// Whole-response wall-clock budget for writing.
    pub write_budget: Duration,
    /// Consecutive `500`s before a worker's circuit breaker trips open.
    /// `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker fast-fails before half-opening.
    pub breaker_cooldown: Duration,
    /// How often the supervisor checks for dead workers.
    pub supervisor_interval: Duration,
    /// Largest `POST /batch` grid accepted; bigger grids are shed with
    /// `503` before any cell runs (a grid is amplified load: one
    /// connection, many simulations).
    pub max_batch_cells: usize,
    /// Fault-injection plan; [`FaultPlan::inert`] in production.
    pub faults: Arc<FaultPlan>,
    /// Optional disk cache tier: a [`dee_store::Store`] directory that
    /// raw traces are replayed from (and recorded to) on prepared-cache
    /// misses, so trace work survives restarts. `None` disables the
    /// tier.
    pub store_dir: Option<PathBuf>,
    /// Stable identity this node reports on `GET /node`, used by cluster
    /// peers to tell replicas apart across restarts and respawns.
    pub node_id: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            queue_capacity: 64,
            cache_entries: 128,
            cache_shards: 8,
            max_body_bytes: 1 << 20,
            default_deadline: Duration::from_secs(10),
            read_budget: Duration::from_secs(5),
            write_budget: Duration::from_secs(5),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(250),
            supervisor_interval: Duration::from_millis(10),
            max_batch_cells: 256,
            faults: Arc::new(FaultPlan::inert()),
            store_dir: None,
            node_id: "node-0".to_string(),
        }
    }
}

/// One accepted connection, stamped so queue wait counts toward the
/// request deadline.
struct Job {
    stream: TcpStream,
    accepted: Instant,
}

/// What the job queue carries. Connections are the unit of backpressure;
/// batch-help markers are best-effort advertisements that a `/batch` grid
/// has unclaimed cells (see [`BatchState`]) and are free to be dropped —
/// the handling worker always drains the grid itself.
enum Work {
    /// Serve one accepted connection.
    Conn(Job),
    /// Help drain a batch grid's remaining cells.
    BatchHelp(Arc<BatchState>),
}

/// A `POST /batch` grid being fanned across the worker pool.
///
/// The handling worker builds one, pushes best-effort [`Work::BatchHelp`]
/// markers onto the job queue, then drains cells itself. Workers claim
/// cell indices from the atomic injector and write results into per-index
/// slots, so the response is assembled in grid order no matter which
/// thread ran which cell or in what order cells finished — the same
/// indexed-injector design as the sweep pool in `dee-bench` (DESIGN.md
/// §8). Because the handler always participates until the injector is
/// exhausted, the batch completes even if every marker is dropped (full
/// queue, zero spare workers): no deadlock by construction. A marker
/// popped after completion finds the injector exhausted and is a no-op.
struct BatchState {
    cells: Vec<api::BatchCell>,
    deadline: Instant,
    /// Cell injector: the next unclaimed cell index.
    next: AtomicUsize,
    /// Per-cell result slots, written in any order, read in grid order.
    results: Vec<Mutex<Option<Json>>>,
    /// Prepared-cache accounting across cells, for the response summary.
    hits: AtomicU64,
    misses: AtomicU64,
    /// Completed cells; the handler waits on `all_done` until it reaches
    /// `cells.len()` (helpers may still be finishing claimed cells after
    /// the injector runs dry).
    finished: Mutex<usize>,
    all_done: Condvar,
}

struct Shared {
    queue: Bounded<Work>,
    cache: PreparedCache,
    metrics: Metrics,
    stop: AtomicBool,
    workers: usize,
    max_body_bytes: usize,
    default_deadline: Duration,
    read_budget: Duration,
    write_budget: Duration,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    supervisor_interval: Duration,
    max_batch_cells: usize,
    faults: Arc<FaultPlan>,
    /// Disk cache tier for raw traces; `None` when not configured.
    store: Option<Arc<dee_store::Store>>,
    node_id: String,
    /// Worker slots, owned jointly by the supervisor (respawns) and
    /// shutdown (final join). `None` marks a slot being respawned.
    slots: Mutex<Vec<Option<JoinHandle<()>>>>,
}

impl Shared {
    fn slots(&self) -> std::sync::MutexGuard<'_, Vec<Option<JoinHandle<()>>>> {
        // A worker that panicked while this lock was held cannot leave
        // the Vec structurally broken; recover instead of cascading.
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn workers_alive(&self) -> usize {
        self.slots()
            .iter()
            .filter(|s| s.as_ref().is_some_and(|h| !h.is_finished()))
            .count()
    }
}

/// A running server. Dropping the handle leaks the threads; call
/// [`shutdown`](Server::shutdown) for an orderly stop.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: JoinHandle<()>,
    supervisor_thread: JoinHandle<()>,
}

impl Server {
    /// Binds `config.addr` and spawns the accept thread, worker pool,
    /// and worker supervisor.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let store = match &config.store_dir {
            Some(dir) => Some(Arc::new(dee_store::Store::open(dir)?)),
            None => None,
        };
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_capacity),
            cache: PreparedCache::new(config.cache_entries, config.cache_shards),
            metrics: Metrics::new(),
            stop: AtomicBool::new(false),
            workers: config.workers,
            max_body_bytes: config.max_body_bytes,
            default_deadline: config.default_deadline,
            read_budget: config.read_budget,
            write_budget: config.write_budget,
            breaker_threshold: config.breaker_threshold,
            breaker_cooldown: config.breaker_cooldown,
            supervisor_interval: config.supervisor_interval,
            max_batch_cells: config.max_batch_cells,
            faults: config.faults,
            store,
            node_id: config.node_id,
            slots: Mutex::new(Vec::new()),
        });
        {
            let mut slots = shared.slots();
            for i in 0..config.workers {
                slots.push(Some(spawn_worker(&shared, i)?));
            }
        }
        let supervisor_shared = Arc::clone(&shared);
        let supervisor_thread = std::thread::Builder::new()
            .name("dee-serve-supervisor".to_string())
            .spawn(move || supervisor_loop(&supervisor_shared))?;
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("dee-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            shared,
            addr,
            accept_thread,
            supervisor_thread,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry (shared with the worker threads).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The fault plan the server was spawned with (tests disarm it to
    /// end a storm).
    #[must_use]
    pub fn faults(&self) -> &Arc<FaultPlan> {
        &self.shared.faults
    }

    /// The disk cache tier, when one was configured.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<dee_store::Store>> {
        self.shared.store.as_ref()
    }

    /// Worker threads currently alive (respawns land within a
    /// supervisor interval of a death).
    #[must_use]
    pub fn workers_alive(&self) -> usize {
        self.shared.workers_alive()
    }

    /// Stops accepting, lets workers drain every queued job, then joins
    /// all threads. Jobs still queued when no worker remains (the
    /// `workers: 0` seam) are answered `503`.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept thread with a throwaway connection.
        drop(TcpStream::connect(self.addr));
        let _ = self.accept_thread.join();
        // Join the supervisor *before* closing the queue so it cannot
        // respawn a worker concurrently with the final join below.
        let _ = self.supervisor_thread.join();
        self.shared.queue.close();
        let handles: Vec<JoinHandle<()>> = self.shared.slots().drain(..).flatten().collect();
        for worker in handles {
            let _ = worker.join();
        }
        for work in self.shared.queue.drain() {
            match work {
                Work::Conn(job) => refuse(job.stream, &self.shared.metrics),
                // The handling worker owns batch completion; a drained
                // marker is just a dropped advertisement.
                Work::BatchHelp(_) => {}
            }
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: usize) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("dee-serve-worker-{id}"))
        .spawn(move || worker_loop(&shared))
}

/// Watches the worker slots and respawns any thread that has finished
/// while the server is running — whether it recycled itself after a
/// caught panic or died to an unhandled one.
fn supervisor_loop(shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        {
            let mut slots = shared.slots();
            for i in 0..slots.len() {
                if !slots[i].as_ref().is_some_and(JoinHandle::is_finished) {
                    continue;
                }
                if let Some(dead) = slots[i].take() {
                    let _ = dead.join();
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Ok(handle) = spawn_worker(shared, i) {
                    slots[i] = Some(handle);
                    shared
                        .metrics
                        .worker_respawns
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        std::thread::sleep(shared.supervisor_interval);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // The accept thread has no supervisor; survive anything the
        // enqueue path (including an armed QueuePush site) throws.
        if catch_unwind(AssertUnwindSafe(|| enqueue(shared, stream))).is_err() {
            shared.metrics.panics_caught.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn enqueue(shared: &Shared, stream: TcpStream) {
    if shared.faults.trip(FaultSite::QueuePush).is_some() {
        // Injected enqueue failure: shed exactly like a full queue.
        refuse(stream, &shared.metrics);
        return;
    }
    let job = Job {
        stream,
        accepted: Instant::now(),
    };
    match shared.queue.try_push(Work::Conn(job)) {
        Ok(depth) => shared.metrics.observe_queue_depth(depth as u64),
        Err(TryPushError::Full(work)) | Err(TryPushError::Closed(work)) => {
            // Only connections are enqueued here; shed whatever came back
            // rather than staking the accept thread on that invariant.
            if let Work::Conn(job) = work {
                refuse(job.stream, &shared.metrics);
            }
        }
    }
}

/// Sheds one connection with `503 queue full`.
fn refuse(mut stream: TcpStream, metrics: &Metrics) {
    metrics.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    metrics.count_response(503);
    let body = Json::obj(vec![("error", Json::str("queue full"))]).to_string();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = write_response(&mut stream, 503, "application/json", body.as_bytes());
    lingering_close(stream);
}

/// Fast-fails one job with `503` because the worker's breaker is open.
fn refuse_breaker(mut stream: TcpStream, metrics: &Metrics) {
    metrics.breaker_fast_fails.fetch_add(1, Ordering::Relaxed);
    metrics.count_response(503);
    let body = Json::obj(vec![("error", Json::str("circuit open"))]).to_string();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = write_response(&mut stream, 503, "application/json", body.as_bytes());
    lingering_close(stream);
}

/// Closes a connection whose request was never (fully) read. Closing with
/// unread bytes in the receive buffer makes the kernel send RST, which
/// can destroy the response before the client reads it — so half-close
/// the write side and drain the peer's data until EOF first.
fn lingering_close(mut stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    let mut scratch = [0u8; 1024];
    while let Ok(n) = std::io::Read::read(&mut stream, &mut scratch) {
        if n == 0 {
            break;
        }
    }
}

/// A worker's consecutive-failure circuit breaker.
///
/// Closed → (threshold consecutive failures) → Open, fast-failing jobs
/// with `503` → (cooldown elapses) → Half-open, one trial job →
/// success closes, failure re-opens. Thread-local to its worker, so no
/// locking; a respawned worker starts with a fresh (closed) breaker.
struct Breaker {
    threshold: u32,
    cooldown: Duration,
    consecutive: u32,
    open_until: Option<Instant>,
    half_open: bool,
}

impl Breaker {
    fn new(threshold: u32, cooldown: Duration) -> Self {
        Breaker {
            threshold,
            cooldown,
            consecutive: 0,
            open_until: None,
            half_open: false,
        }
    }

    /// Whether the next job may run; flips Open → Half-open after the
    /// cooldown.
    fn allow(&mut self, now: Instant) -> bool {
        match self.open_until {
            None => true,
            Some(until) if now < until => false,
            Some(_) => {
                self.open_until = None;
                self.half_open = true;
                true
            }
        }
    }

    /// Records a job outcome; returns `true` when this trip opened the
    /// breaker (for metrics).
    fn record(&mut self, failed: bool, now: Instant) -> bool {
        if self.threshold == 0 {
            return false;
        }
        if !failed {
            self.consecutive = 0;
            self.half_open = false;
            return false;
        }
        if self.half_open {
            // Trial failed: straight back to open.
            self.half_open = false;
            self.open_until = Some(now + self.cooldown);
            return true;
        }
        self.consecutive += 1;
        if self.consecutive >= self.threshold {
            self.consecutive = 0;
            self.open_until = Some(now + self.cooldown);
            return true;
        }
        false
    }
}

/// Why a served job ended, from the worker's perspective.
enum JobEnd {
    /// Answered with this status.
    Answered(u16),
    /// Answered `500` after catching a panic; the worker should recycle.
    Panicked,
    /// The peer vanished before a request existed; nothing to answer.
    Dropped,
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut breaker = Breaker::new(shared.breaker_threshold, shared.breaker_cooldown);
    while let Some(work) = shared.queue.pop() {
        let job = match work {
            Work::Conn(job) => job,
            Work::BatchHelp(state) => {
                // Cell failures are per-cell `error` members, not worker
                // health signals, so helping bypasses the breaker; the
                // fault sites inside each cell still fire normally.
                batch_drain(shared, &state);
                continue;
            }
        };
        if shared.faults.trip(FaultSite::QueuePop).is_some() {
            // Injected dequeue failure: shed the job like overload.
            refuse(job.stream, &shared.metrics);
            continue;
        }
        if !breaker.allow(Instant::now()) {
            refuse_breaker(job.stream, &shared.metrics);
            continue;
        }
        let end = serve_job(shared, job);
        match end {
            JobEnd::Answered(status) => {
                // Only worker-attributable failures count: 500s. Client
                // errors, shed load (503), and deadline misses (504) say
                // nothing about this worker's health.
                if breaker.record(status == 500, Instant::now()) {
                    shared.metrics.breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            JobEnd::Panicked => {
                // The client got its 500; recycle the thread anyway — a
                // panic mid-simulation may have left thread state torn,
                // and the supervisor will replace us within an interval.
                return;
            }
            JobEnd::Dropped => {}
        }
    }
}

const JSON: &str = "application/json";
const TEXT: &str = "text/plain; charset=utf-8";
const OCTET: &str = "application/octet-stream";

/// Builds a `{"error": message}` response body.
fn err_json(status: u16, message: impl Into<String>) -> (u16, &'static str, Vec<u8>) {
    let body = Json::obj(vec![("error", Json::str(message.into()))]);
    (status, JSON, body.to_string().into_bytes())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn serve_job(shared: &Shared, job: Job) -> JobEnd {
    let accepted = job.accepted;
    let guarded = match GuardedStream::new(
        job.stream,
        shared.read_budget,
        shared.write_budget,
        Arc::clone(&shared.faults),
    ) {
        Ok(guarded) => guarded,
        // The socket refused timeouts; it cannot be served under a
        // budget, and per the contract we do not serve without one.
        Err(_) => return JobEnd::Dropped,
    };
    let mut reader = BufReader::new(guarded);
    let mut fully_read = true;
    let mut panicked = false;
    let (status, content_type, body) = match read_request(&mut reader, shared.max_body_bytes) {
        Ok(None) => return JobEnd::Dropped, // peer closed without sending a request
        Ok(Some(request)) => {
            shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
            match catch_unwind(AssertUnwindSafe(|| dispatch(shared, &request, accepted))) {
                Ok(response) => response,
                Err(payload) => {
                    shared.metrics.panics_caught.fetch_add(1, Ordering::Relaxed);
                    panicked = true;
                    let body = Json::obj(vec![
                        ("error", Json::str("internal: simulation job panicked")),
                        ("detail", Json::str(panic_message(payload.as_ref()))),
                    ]);
                    (500, JSON, body.to_string().into_bytes())
                }
            }
        }
        Err(HttpError::BadRequest(message)) => {
            fully_read = false;
            err_json(400, message)
        }
        Err(HttpError::TooLarge) => {
            fully_read = false;
            err_json(413, "payload too large")
        }
        Err(HttpError::Io(e)) => {
            // Answer rather than vanish: if the transport is genuinely
            // dead the write below fails harmlessly, but a slow-loris
            // (408) or an injected read fault (400) deserves a response.
            fully_read = false;
            if e.kind() == std::io::ErrorKind::TimedOut {
                shared.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                err_json(408, "request read timed out")
            } else {
                err_json(400, "request read failed")
            }
        }
    };
    if status == 504 {
        shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
    }
    shared.metrics.count_response(status);
    let mut guarded = reader.into_inner();
    let write_ok = write_response(&mut guarded, status, content_type, &body).is_ok();
    let stream = guarded.into_inner();
    if !fully_read && write_ok {
        lingering_close(stream);
    }
    let elapsed = accepted.elapsed();
    shared
        .metrics
        .latency
        .record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    if panicked {
        JobEnd::Panicked
    } else {
        JobEnd::Answered(status)
    }
}

fn dispatch(shared: &Shared, request: &Request, accepted: Instant) -> (u16, &'static str, Vec<u8>) {
    if shared.faults.trip(FaultSite::JobExecute).is_some() {
        return err_json(500, "injected fault: job_execute");
    }
    let path = request.path();
    if let Some(name) = path.strip_prefix("/store/artifact/") {
        return handle_artifact(shared, request, name);
    }
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => (200, TEXT, b"ok\n".to_vec()),
        ("GET", "/node") => {
            let artifacts = shared
                .store
                .as_ref()
                .and_then(|s| s.list().ok())
                .map_or(0, |entries| entries.len());
            let body = Json::obj(vec![
                ("node_id", Json::str(shared.node_id.clone())),
                ("artifacts", Json::from(artifacts as u64)),
                ("workers_alive", Json::from(shared.workers_alive() as u64)),
            ]);
            (200, JSON, body.to_string().into_bytes())
        }
        ("GET", "/store/digest") => handle_digest(shared),
        ("GET", "/metrics") => {
            let gauges = [
                ("dee_queue_depth", shared.queue.len() as u64),
                ("dee_cache_entries", shared.cache.len() as u64),
                ("dee_workers", shared.workers as u64),
                ("dee_workers_alive", shared.workers_alive() as u64),
            ];
            let mut text = shared.metrics.render(&gauges);
            text.push_str(&shared.faults.render_metrics());
            if let Some(store) = &shared.store {
                text.push_str(&store.stats().render_metrics());
            }
            (200, TEXT, text.into_bytes())
        }
        ("POST", "/simulate")
        | ("POST", "/simulate_range")
        | ("POST", "/tree")
        | ("POST", "/levo")
        | ("POST", "/batch") => {
            let (status, content_type, body) = handle_api(shared, request, accepted);
            (status, content_type, body.into_bytes())
        }
        ("GET", "/debug/at") => {
            let deadline = accepted + shared.default_deadline;
            match api::handle_debug_at(
                request,
                deadline,
                &shared.faults,
                shared.store.as_deref(),
                &shared.metrics,
            ) {
                Ok(json) => (200, JSON, json.to_string().into_bytes()),
                Err(e) => err_json(e.status, e.message),
            }
        }
        (
            _,
            "/healthz" | "/metrics" | "/node" | "/store/digest" | "/simulate" | "/simulate_range"
            | "/tree" | "/levo" | "/batch" | "/debug/at",
        ) => err_json(405, "method not allowed"),
        _ => err_json(404, "not found"),
    }
}

/// `GET /store/digest` — the anti-entropy exchange: every published
/// artifact's name, size, and content digest (folded per-chunk `DEESTOR1`
/// checksums), plus a fold over the whole listing so two converged peers
/// can agree in one comparison. An armed [`FaultSite::StalePeerStore`]
/// answers with an empty listing — the signature of a peer that missed a
/// publish — which delays convergence by a round without corrupting
/// anything.
fn handle_digest(shared: &Shared) -> (u16, &'static str, Vec<u8>) {
    let Some(store) = &shared.store else {
        return err_json(404, "no store configured");
    };
    let entries = if shared.faults.trip(FaultSite::StalePeerStore).is_some() {
        Vec::new()
    } else {
        match store.digest_listing() {
            Ok(entries) => entries,
            Err(e) => return err_json(500, format!("digest listing failed: {e}")),
        }
    };
    let fold = dee_store::fold_digests(&entries);
    let listing: Vec<Json> = entries
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("name", Json::str(e.name.clone())),
                ("bytes", Json::from(e.bytes)),
                ("digest", Json::str(format!("{:016x}", e.digest))),
            ])
        })
        .collect();
    let body = Json::obj(vec![
        ("node_id", Json::str(shared.node_id.clone())),
        ("fold", Json::str(format!("{fold:016x}"))),
        ("entries", Json::Arr(listing)),
    ]);
    (200, JSON, body.to_string().into_bytes())
}

/// `GET`/`PUT /store/artifact/<name>` — raw container bytes for
/// replication. Names are validated before touching the filesystem, and
/// `PUT` goes through [`dee_store::Store::install_artifact`]'s verified
/// install, so a peer can neither traverse paths nor publish bytes that
/// fail checksum verification.
fn handle_artifact(shared: &Shared, request: &Request, name: &str) -> (u16, &'static str, Vec<u8>) {
    let Some(store) = &shared.store else {
        return err_json(404, "no store configured");
    };
    if !dee_store::valid_artifact_name(name) {
        return err_json(400, "invalid artifact name");
    }
    match request.method.as_str() {
        "GET" => match store.artifact_bytes(name) {
            Ok(Some(bytes)) => (200, OCTET, bytes),
            Ok(None) => err_json(404, "artifact not found"),
            Err(e) => err_json(500, format!("artifact read failed: {e}")),
        },
        "PUT" => match store.install_artifact(name, &request.body) {
            Ok(installed) => {
                let body = Json::obj(vec![("installed", Json::Bool(installed))]);
                (200, JSON, body.to_string().into_bytes())
            }
            Err(dee_store::StoreError::Corrupt { detail, .. }) => {
                err_json(422, format!("artifact failed verification: {detail}"))
            }
            Err(e) => err_json(500, format!("artifact install failed: {e}")),
        },
        _ => err_json(405, "method not allowed"),
    }
}

fn handle_api(
    shared: &Shared,
    request: &Request,
    accepted: Instant,
) -> (u16, &'static str, String) {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => "{}",
        Err(_) => {
            let body = Json::obj(vec![("error", Json::str("body is not UTF-8"))]);
            return (400, JSON, body.to_string());
        }
    };
    if shared.faults.trip(FaultSite::JsonDecode).is_some() {
        let body = Json::obj(vec![("error", Json::str("injected fault: json_decode"))]);
        return (500, JSON, body.to_string());
    }
    let body = match parse_json(text) {
        Ok(body) => body,
        Err(message) => {
            let body = Json::obj(vec![("error", Json::str(format!("json: {message}")))]);
            return (400, JSON, body.to_string());
        }
    };
    let mut budget = shared.default_deadline;
    if let Some(ms) = body.get("deadline_ms").and_then(Json::as_u64) {
        budget = budget.min(Duration::from_millis(ms));
    }
    let deadline = accepted + budget;
    let result = match request.path() {
        "/simulate" => api::handle_simulate(
            &shared.cache,
            &body,
            deadline,
            &shared.faults,
            shared.store.as_deref(),
        )
        .map(|(json, hit)| {
            let counter = if hit {
                &shared.metrics.cache_hits
            } else {
                &shared.metrics.cache_misses
            };
            counter.fetch_add(1, Ordering::Relaxed);
            json
        }),
        "/simulate_range" => api::handle_simulate_range(
            &body,
            deadline,
            &shared.faults,
            shared.store.as_deref(),
            &shared.metrics,
        ),
        "/tree" => api::handle_tree(&body),
        "/batch" => handle_batch(shared, &body, deadline),
        _ => api::handle_levo(&body, deadline, &shared.faults),
    };
    match result {
        Ok(json) => (200, JSON, json.to_string()),
        Err(e) => {
            if e.status == 422 {
                shared
                    .metrics
                    .analyze_rejects
                    .fetch_add(1, Ordering::Relaxed);
            }
            (e.status, JSON, e.to_json().to_string())
        }
    }
}

/// `POST /batch` — fan a `workloads × models × ets` grid across the
/// worker pool and answer with per-cell results in deterministic grid
/// order. Reuses the single-shot machinery wholesale: each cell goes
/// through [`api::prepared_for`]'s sharded cache (so a grid over few
/// workloads pays each preparation once) and the same fault sites, and
/// the whole grid shares the request's deadline.
fn handle_batch(shared: &Shared, body: &Json, deadline: Instant) -> Result<Json, api::ApiError> {
    let cells = api::parse_batch(body)?;
    if cells.len() > shared.max_batch_cells {
        shared
            .metrics
            .batch_rejected_oversize
            .fetch_add(1, Ordering::Relaxed);
        return Err(api::ApiError {
            status: 503,
            message: format!(
                "batch too large: {} cells (max {})",
                cells.len(),
                shared.max_batch_cells
            ),
            codes: Vec::new(),
        });
    }
    shared
        .metrics
        .batch_requests
        .fetch_add(1, Ordering::Relaxed);
    let total = cells.len();
    let state = Arc::new(BatchState {
        results: (0..total).map(|_| Mutex::new(None)).collect(),
        cells,
        deadline,
        next: AtomicUsize::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        finished: Mutex::new(0),
        all_done: Condvar::new(),
    });
    // Advertise help on the job queue, best-effort: at most one marker
    // per spare worker, and a full (or closed) queue just means this
    // worker runs more of the grid itself.
    let helpers = shared
        .workers
        .saturating_sub(1)
        .min(total.saturating_sub(1));
    for _ in 0..helpers {
        match shared.queue.try_push(Work::BatchHelp(Arc::clone(&state))) {
            Ok(depth) => shared.metrics.observe_queue_depth(depth as u64),
            Err(_) => break,
        }
    }
    batch_drain(shared, &state);
    let mut finished = state
        .finished
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    while *finished < total {
        finished = state
            .all_done
            .wait(finished)
            .unwrap_or_else(PoisonError::into_inner);
    }
    drop(finished);
    let results: Vec<Json> = state
        .results
        .iter()
        .map(|slot| {
            slot.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .unwrap_or_else(|| {
                    // A cell whose slot was never written (worker killed
                    // by an unhandled panic mid-cell) degrades to an
                    // error member instead of panicking the handler.
                    Json::obj(vec![("error", Json::str("internal: cell result missing"))])
                })
        })
        .collect();
    Ok(Json::obj(vec![
        ("cells", Json::from(total as u64)),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::from(state.hits.load(Ordering::Relaxed))),
                ("misses", Json::from(state.misses.load(Ordering::Relaxed))),
            ]),
        ),
        ("results", Json::Arr(results)),
    ]))
}

/// Claims and runs batch cells until the injector is exhausted. Runs on
/// the handling worker and on any helper that picked up a marker. Each
/// cell executes under its own `catch_unwind`, so an injected panic (or a
/// bug) costs exactly that cell — its slot gets an `error` member — and
/// the worker lives on to claim the next cell.
fn batch_drain(shared: &Shared, state: &BatchState) {
    loop {
        let index = state.next.fetch_add(1, Ordering::Relaxed);
        if index >= state.cells.len() {
            return;
        }
        let cell = &state.cells[index];
        let (json, hit) = match catch_unwind(AssertUnwindSafe(|| {
            api::run_batch_cell(
                &shared.cache,
                cell,
                state.deadline,
                &shared.faults,
                shared.store.as_deref(),
            )
        })) {
            Ok(done) => done,
            Err(payload) => {
                shared.metrics.panics_caught.fetch_add(1, Ordering::Relaxed);
                (
                    api::batch_cell_error(cell, &panic_message(payload.as_ref())),
                    None,
                )
            }
        };
        match hit {
            Some(true) => {
                state.hits.fetch_add(1, Ordering::Relaxed);
                shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            Some(false) => {
                state.misses.fetch_add(1, Ordering::Relaxed);
                shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        shared.metrics.batch_cells.fetch_add(1, Ordering::Relaxed);
        *state.results[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(json);
        let mut finished = state
            .finished
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *finished += 1;
        if *finished == state.cells.len() {
            state.all_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let mut b = Breaker::new(3, Duration::from_millis(50));
        let t0 = Instant::now();
        assert!(b.allow(t0));
        assert!(!b.record(true, t0));
        assert!(!b.record(true, t0));
        assert!(b.record(true, t0), "third consecutive failure trips");
        assert!(!b.allow(t0), "open breaker refuses immediately");
        assert!(
            !b.allow(t0 + Duration::from_millis(49)),
            "still open within cooldown"
        );
    }

    #[test]
    fn breaker_half_open_trial_closes_on_success_reopens_on_failure() {
        let mut b = Breaker::new(2, Duration::from_millis(10));
        let t0 = Instant::now();
        b.record(true, t0);
        assert!(b.record(true, t0), "trips");
        let after = t0 + Duration::from_millis(11);
        assert!(b.allow(after), "cooldown elapsed: half-open trial runs");
        assert!(
            b.record(true, after),
            "failed trial re-opens (counts as trip)"
        );
        let later = after + Duration::from_millis(11);
        assert!(b.allow(later), "second trial");
        assert!(!b.record(false, later), "successful trial closes");
        assert!(b.allow(later), "closed breaker admits everything");
        assert!(!b.record(true, later), "failure count restarts from zero");
    }

    #[test]
    fn breaker_success_resets_consecutive_count() {
        let mut b = Breaker::new(3, Duration::from_millis(10));
        let t0 = Instant::now();
        b.record(true, t0);
        b.record(true, t0);
        b.record(false, t0);
        assert!(!b.record(true, t0));
        assert!(!b.record(true, t0));
        assert!(b.record(true, t0), "needs a fresh run of three");
    }

    #[test]
    fn zero_threshold_disables_breaker() {
        let mut b = Breaker::new(0, Duration::from_millis(10));
        let t0 = Instant::now();
        for _ in 0..100 {
            assert!(!b.record(true, t0));
        }
        assert!(b.allow(t0));
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(boxed.as_ref()), "static str");
        let boxed: Box<dyn std::any::Any + Send> = Box::new("owned".to_string());
        assert_eq!(panic_message(boxed.as_ref()), "owned");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(boxed.as_ref()), "non-string panic payload");
    }
}
