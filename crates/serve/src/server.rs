//! The resident simulation server: accept loop, worker pool, dispatch.
//!
//! One TCP connection carries exactly one request (`Connection: close`),
//! so the bounded job queue measures load in whole requests. The accept
//! thread never blocks on the queue — at capacity it answers
//! `503 queue full` inline and moves on, which keeps accept latency flat
//! under overload and makes backpressure observable to clients instead
//! of silent.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::api;
use crate::cache::PreparedCache;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::{parse as parse_json, Json};
use crate::metrics::Metrics;
use crate::queue::{Bounded, TryPushError};

/// Tuning knobs for [`Server::spawn`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads. `0` spawns no workers — accepted jobs queue until
    /// the queue fills, a deterministic seam for backpressure tests.
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it connections get `503`.
    pub queue_capacity: usize,
    /// Total prepared-trace cache entries across all shards.
    pub cache_entries: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Default per-request deadline, measured from accept time. Requests
    /// may tighten it with a `deadline_ms` body field.
    pub default_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            queue_capacity: 64,
            cache_entries: 128,
            cache_shards: 8,
            max_body_bytes: 1 << 20,
            default_deadline: Duration::from_secs(10),
        }
    }
}

/// One accepted connection, stamped so queue wait counts toward the
/// request deadline.
struct Job {
    stream: TcpStream,
    accepted: Instant,
}

struct Shared {
    queue: Bounded<Job>,
    cache: PreparedCache,
    metrics: Metrics,
    stop: AtomicBool,
    workers: usize,
    max_body_bytes: usize,
    default_deadline: Duration,
}

/// A running server. Dropping the handle leaks the threads; call
/// [`shutdown`](Server::shutdown) for an orderly stop.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: JoinHandle<()>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and spawns the accept thread plus worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_capacity),
            cache: PreparedCache::new(config.cache_entries, config.cache_shards),
            metrics: Metrics::new(),
            stop: AtomicBool::new(false),
            workers: config.workers,
            max_body_bytes: config.max_body_bytes,
            default_deadline: config.default_deadline,
        });
        let worker_threads = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dee-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("dee-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            shared,
            addr,
            accept_thread,
            worker_threads,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry (shared with the worker threads).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Stops accepting, lets workers drain every queued job, then joins
    /// all threads. Jobs still queued when no worker remains (the
    /// `workers: 0` seam) are answered `503`.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept thread with a throwaway connection.
        drop(TcpStream::connect(self.addr));
        let _ = self.accept_thread.join();
        self.shared.queue.close();
        for worker in self.worker_threads {
            let _ = worker.join();
        }
        for job in self.shared.queue.drain() {
            refuse(job.stream, &self.shared.metrics);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let job = Job {
            stream,
            accepted: Instant::now(),
        };
        match shared.queue.try_push(job) {
            Ok(depth) => shared.metrics.observe_queue_depth(depth as u64),
            Err(TryPushError::Full(job)) | Err(TryPushError::Closed(job)) => {
                refuse(job.stream, &shared.metrics);
            }
        }
    }
}

/// Sheds one connection with `503 queue full`.
fn refuse(mut stream: TcpStream, metrics: &Metrics) {
    metrics.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    metrics.count_response(503);
    let body = Json::obj(vec![("error", Json::str("queue full"))]).to_string();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = write_response(&mut stream, 503, "application/json", body.as_bytes());
    lingering_close(stream);
}

/// Closes a connection whose request was never (fully) read. Closing with
/// unread bytes in the receive buffer makes the kernel send RST, which
/// can destroy the response before the client reads it — so half-close
/// the write side and drain the peer's data until EOF first.
fn lingering_close(mut stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    let mut scratch = [0u8; 1024];
    while let Ok(n) = std::io::Read::read(&mut stream, &mut scratch) {
        if n == 0 {
            break;
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        handle_connection(shared, job);
    }
}

fn handle_connection(shared: &Shared, job: Job) {
    let accepted = job.accepted;
    let stream = job.stream;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(stream);
    let mut fully_read = true;
    let (status, content_type, body) = match read_request(&mut reader, shared.max_body_bytes) {
        Ok(None) => return, // peer closed without sending a request
        Ok(Some(request)) => {
            shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
            dispatch(shared, &request, accepted)
        }
        Err(HttpError::BadRequest(message)) => {
            fully_read = false;
            (
                400,
                JSON,
                Json::obj(vec![("error", Json::str(message))]).to_string(),
            )
        }
        Err(HttpError::TooLarge) => {
            fully_read = false;
            (
                413,
                JSON,
                Json::obj(vec![("error", Json::str("payload too large"))]).to_string(),
            )
        }
        Err(HttpError::Io(_)) => return, // peer went away mid-request
    };
    if status == 504 {
        shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
    }
    shared.metrics.count_response(status);
    let mut stream = reader.into_inner();
    let _ = write_response(&mut stream, status, content_type, body.as_bytes());
    if !fully_read {
        lingering_close(stream);
    }
    let elapsed = accepted.elapsed();
    shared
        .metrics
        .latency
        .record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
}

const JSON: &str = "application/json";
const TEXT: &str = "text/plain; charset=utf-8";

fn dispatch(shared: &Shared, request: &Request, accepted: Instant) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => (200, TEXT, "ok\n".to_string()),
        ("GET", "/metrics") => {
            let gauges = [
                ("dee_queue_depth", shared.queue.len() as u64),
                ("dee_cache_entries", shared.cache.len() as u64),
                ("dee_workers", shared.workers as u64),
            ];
            (200, TEXT, shared.metrics.render(&gauges))
        }
        ("POST", "/simulate") | ("POST", "/tree") | ("POST", "/levo") => {
            handle_api(shared, request, accepted)
        }
        (_, "/healthz" | "/metrics" | "/simulate" | "/tree" | "/levo") => (
            405,
            JSON,
            Json::obj(vec![("error", Json::str("method not allowed"))]).to_string(),
        ),
        _ => (
            404,
            JSON,
            Json::obj(vec![("error", Json::str("not found"))]).to_string(),
        ),
    }
}

fn handle_api(
    shared: &Shared,
    request: &Request,
    accepted: Instant,
) -> (u16, &'static str, String) {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => "{}",
        Err(_) => {
            let body = Json::obj(vec![("error", Json::str("body is not UTF-8"))]);
            return (400, JSON, body.to_string());
        }
    };
    let body = match parse_json(text) {
        Ok(body) => body,
        Err(message) => {
            let body = Json::obj(vec![("error", Json::str(format!("json: {message}")))]);
            return (400, JSON, body.to_string());
        }
    };
    let mut budget = shared.default_deadline;
    if let Some(ms) = body.get("deadline_ms").and_then(Json::as_u64) {
        budget = budget.min(Duration::from_millis(ms));
    }
    let deadline = accepted + budget;
    let result = match request.path() {
        "/simulate" => api::handle_simulate(&shared.cache, &body, deadline).map(|(json, hit)| {
            let counter = if hit {
                &shared.metrics.cache_hits
            } else {
                &shared.metrics.cache_misses
            };
            counter.fetch_add(1, Ordering::Relaxed);
            json
        }),
        "/tree" => api::handle_tree(&body),
        _ => api::handle_levo(&body, deadline),
    };
    match result {
        Ok(json) => (200, JSON, json.to_string()),
        Err(e) => (e.status, JSON, e.to_json().to_string()),
    }
}
