//! A bounded multi-producer/multi-consumer job queue with explicit
//! backpressure.
//!
//! `try_push` never blocks: when the queue is at capacity the caller gets
//! the item back and is expected to shed load (the server answers
//! `503 queue full`). `pop` blocks until work arrives or the queue is
//! closed *and* drained, which gives workers graceful-shutdown semantics
//! for free: close the queue, and every worker finishes the remaining
//! jobs before exiting.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why `try_push` gave the item back.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity — shed load.
    Full(T),
    /// The queue was closed — the server is shutting down.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Locks the queue state, recovering from poisoning: every critical
    /// section is a handful of VecDeque calls that cannot be interrupted
    /// mid-mutation by a panic in *this* module, so a poisoned mutex only
    /// means some thread died elsewhere while holding it — shutting the
    /// whole queue (and with it the server) would amplify one dead worker
    /// into total loss of service.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; returns the resulting depth.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Full`] at capacity, [`TryPushError::Closed`] after
    /// [`close`](Self::close); both return the item.
    pub fn try_push(&self, item: T) -> Result<usize, TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks for the next item; `None` once closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes fail, pops drain what remains then end.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Removes and returns everything currently queued.
    #[must_use]
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.lock();
        state.items.drain(..).collect()
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains_pops() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(TryPushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let got: Vec<Option<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got.iter().filter(|v| v.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|v| v.is_none()).count(), 3);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q = Arc::new(Bounded::<u64>::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let mut item = p * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(_) => break,
                                Err(TryPushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(TryPushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expected: u64 = (0..3u64)
            .map(|p| (0..100u64).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn drain_empties_the_queue() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.drain(), vec!["a", "b"]);
        assert!(q.is_empty());
    }
}
