//! The static/dynamic cross-check through the persistent store: record
//! each workload's trace to disk, replay it, and verify the replayed
//! records against the static branch census. Corruption at either level —
//! a flipped byte in the on-disk container, or a mutated record in memory
//! — must surface as a *typed* error, never a panic.

use std::io::{Read, Seek, SeekFrom, Write};

use dee_analyze::{BranchCensus, CrossCheckError};
use dee_store::{ArtifactKey, Store, StoreError};
use dee_vm::{BranchOutcome, Trace};
use dee_workloads::{all_workloads, Scale, Workload};

fn temp_store(tag: &str) -> Store {
    let dir = std::env::temp_dir().join(format!("dee-crosscheck-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(&dir).expect("store opens")
}

fn key_for(w: &Workload) -> ArtifactKey {
    ArtifactKey::new(&w.name, "tiny", &w.program.to_listing(), &w.initial_memory)
}

#[test]
fn recorded_workload_traces_verify_against_the_census() {
    let store = temp_store("verify");
    for w in all_workloads(Scale::Tiny) {
        let key = key_for(&w);
        let trace = w.capture_trace().expect("workload traces");
        store.put(&key, &trace).expect("publish");
        // Round-trip through the container, then verify the *replayed*
        // records — this is the path `Suite::load_with_store` trusts.
        let replayed = store.load(&key).expect("load").expect("present");
        let census = BranchCensus::build(&w.program);
        let check = census
            .verify_trace(&replayed)
            .unwrap_or_else(|e| panic!("{}: replayed trace fails cross-check: {e}", w.name));
        assert_eq!(check.records, replayed.records().len() as u64, "{}", w.name);
        assert!(check.records > 0, "{}", w.name);
    }
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn flipped_byte_on_disk_is_a_typed_store_error() {
    let store = temp_store("byteflip");
    let w = dee_workloads::compress::build(Scale::Tiny);
    let key = key_for(&w);
    let trace = w.capture_trace().expect("traces");
    let path = store.put(&key, &trace).expect("publish");

    // Flip one byte in the middle of the record payload.
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .expect("open artifact");
    let len = file.metadata().expect("metadata").len();
    let offset = len / 2;
    file.seek(SeekFrom::Start(offset)).unwrap();
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte).unwrap();
    file.seek(SeekFrom::Start(offset)).unwrap();
    file.write_all(&[byte[0] ^ 0xFF]).unwrap();
    drop(file);

    // The load must fail with a typed error (and quarantine), not panic
    // and not hand back a silently wrong trace.
    match store.load(&key) {
        Err(StoreError::Corrupt { .. }) | Err(StoreError::Io(_)) => {}
        Ok(Some(_)) => panic!("corrupt artifact loaded as if intact"),
        Ok(None) => {} // detected at open time and quarantined
    }
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn mutated_records_are_typed_cross_check_errors() {
    let w = dee_workloads::xlisp::build(Scale::Tiny);
    let census = BranchCensus::build(&w.program);
    let trace = w.capture_trace().expect("traces");
    let base = trace.records().to_vec();
    let output = trace.output().to_vec();
    let branch_at = base
        .iter()
        .position(|r| r.is_cond_branch())
        .expect("xlisp has dynamic branches");

    // A pc past the end of the program.
    let mut records = base.clone();
    records[0].pc = w.program.len() as u32 + 7;
    let err = census
        .verify_trace(&Trace::from_parts(records, output.clone()))
        .unwrap_err();
    assert!(matches!(err, CrossCheckError::PcOutOfRange { .. }), "{err}");

    // A branch outcome on a non-branch instruction.
    let mut records = base.clone();
    let non_branch = base
        .iter()
        .position(|r| !r.is_cond_branch())
        .expect("non-branch record");
    records[non_branch].branch = Some(BranchOutcome {
        taken: true,
        target: 0,
    });
    let err = census
        .verify_trace(&Trace::from_parts(records, output.clone()))
        .unwrap_err();
    assert!(matches!(err, CrossCheckError::NotABranch { .. }), "{err}");

    // A taken-target that disagrees with the static instruction.
    let mut records = base.clone();
    let outcome = records[branch_at].branch.as_mut().unwrap();
    outcome.target = outcome.target.wrapping_add(1);
    let err = census
        .verify_trace(&Trace::from_parts(records, output.clone()))
        .unwrap_err();
    assert!(
        matches!(err, CrossCheckError::TargetMismatch { .. }),
        "{err}"
    );

    // A register operand that disagrees with the static def/uses.
    let mut records = base.clone();
    let with_dst = base
        .iter()
        .position(|r| r.dst.is_some())
        .expect("record with a destination");
    records[with_dst].dst = None;
    let err = census
        .verify_trace(&Trace::from_parts(records, output.clone()))
        .unwrap_err();
    assert!(
        matches!(err, CrossCheckError::OperandMismatch { .. }),
        "{err}"
    );

    // The intact trace still verifies — the mutations above were the only
    // thing standing between it and a pass.
    census
        .verify_trace(&Trace::from_parts(base, output))
        .expect("unmutated records verify");
}
