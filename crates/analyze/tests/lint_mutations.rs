//! Seeded-mutation coverage for every Error-severity lint: start from a
//! shipped (lint-clean) workload, apply one targeted corruption chosen by
//! a seeded xorshift, and assert the expected `DEE-E*` diagnostic fires.
//! The mutation site varies with the seed, so repeated rounds probe
//! different program points while staying exactly reproducible.

use dee_analyze::{analyze_instrs, AnalyzeConfig, Lint, Severity};
use dee_isa::{Instr, Reg};
use dee_workloads::Scale;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn base_instrs() -> Vec<Instr> {
    let w = dee_workloads::compress::build(Scale::Tiny);
    let instrs = w.program.instrs().to_vec();
    let report = analyze_instrs(&instrs, &AnalyzeConfig::default());
    assert!(report.is_clean(), "baseline must be clean");
    instrs
}

fn assert_fires(instrs: &[Instr], lint: Lint, seed: u64) {
    let report = analyze_instrs(instrs, &AnalyzeConfig::default());
    assert!(
        report.has(lint),
        "seed {seed}: expected {} ({}), got:\n{}",
        lint.code(),
        lint.name(),
        report.render_text("mutated")
    );
    assert_eq!(lint.severity(), Severity::Error);
    assert!(report.has_errors());
}

#[test]
fn e002_fires_on_an_emptied_program() {
    assert_fires(&[], Lint::EmptyProgram, 0);
}

#[test]
fn e003_fires_when_a_definition_is_knocked_out() {
    // Replace a reachable defining instruction with a use of its own
    // destination: the register loses every reaching definition on some
    // path and the read becomes provably uninitialized.
    let mut rng = Rng(0xE003);
    let base = base_instrs();
    let mut fired = 0;
    for round in 0..40u64 {
        let seed = rng.0;
        let mut instrs = base.clone();
        let idx = rng.below(instrs.len() as u64) as usize;
        let Some(rd) = instrs[idx].def() else {
            continue;
        };
        instrs[idx] = Instr::Out { rs: rd };
        let report = analyze_instrs(&instrs, &AnalyzeConfig::default());
        // Not every knockout leaves the read undefined (another def may
        // reach it), but when E003 fires it must name an error.
        if report.has(Lint::UninitializedRegisterRead) {
            assert!(report.has_errors(), "seed {seed}");
            fired += 1;
        }
        let _ = round;
    }
    assert!(fired > 0, "no seed produced an uninitialized read");
    // And a deterministic minimal case, so the lint is pinned regardless
    // of workload shape.
    let minimal = [Instr::Out { rs: Reg::new(5) }, Instr::Halt];
    assert_fires(&minimal, Lint::UninitializedRegisterRead, 0);
}

#[test]
fn e004_fires_when_every_halt_is_removed() {
    let instrs: Vec<Instr> = base_instrs()
        .into_iter()
        .map(|i| {
            if matches!(i, Instr::Halt) {
                // Replace rather than delete so no target shifts.
                Instr::Nop
            } else {
                i
            }
        })
        .collect();
    assert_fires(&instrs, Lint::NoHalt, 0xE004);
}

#[test]
fn e005_fires_on_a_retargeted_branch() {
    let mut rng = Rng(0xE005);
    let base = base_instrs();
    let branch_sites: Vec<usize> = base
        .iter()
        .enumerate()
        .filter(|(_, i)| {
            matches!(
                i,
                Instr::Branch { .. } | Instr::Jump { .. } | Instr::Jal { .. }
            )
        })
        .map(|(idx, _)| idx)
        .collect();
    assert!(!branch_sites.is_empty());
    for _ in 0..10 {
        let seed = rng.0;
        let mut instrs = base.clone();
        let idx = branch_sites[rng.below(branch_sites.len() as u64) as usize];
        let bogus = instrs.len() as u32 + 1 + rng.below(1000) as u32;
        match &mut instrs[idx] {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Jal { target } => {
                *target = bogus;
            }
            _ => unreachable!(),
        }
        assert_fires(&instrs, Lint::JumpTargetOutOfRange, seed);
    }
}

#[test]
fn e011_fires_on_a_store_through_an_oob_constant() {
    let mut rng = Rng(0xE011);
    let mem_words = AnalyzeConfig::default().mem_words;
    for _ in 0..10 {
        let seed = rng.0;
        // A fresh straight-line program: li an out-of-bounds address,
        // store through it. The offset is seed-chosen.
        let overshoot = rng.below(1 << 20) as i32;
        let instrs = [
            Instr::Li {
                rd: Reg::new(1),
                imm: mem_words as i32 + overshoot,
            },
            Instr::Sw {
                rs: Reg::new(1),
                base: Reg::new(1),
                offset: 0,
            },
            Instr::Halt,
        ];
        assert_fires(&instrs, Lint::OobConstantStore, seed);
    }
}

#[test]
fn e013_fires_on_a_load_through_an_oob_constant() {
    let mut rng = Rng(0xE013);
    let mem_words = AnalyzeConfig::default().mem_words;
    for _ in 0..10 {
        let seed = rng.0;
        let instrs = [
            Instr::Li {
                rd: Reg::new(2),
                imm: -1 - rng.below(1 << 16) as i32,
            },
            Instr::Lw {
                rd: Reg::new(3),
                base: Reg::new(2),
                offset: 0,
            },
            Instr::Out { rs: Reg::new(3) },
            Instr::Halt,
        ];
        let _ = mem_words;
        assert_fires(&instrs, Lint::OobConstantLoad, seed);
    }
}
