//! Property tests for the dataflow framework over seeded-random programs,
//! plus hand-built mini-programs with known dominator trees and loop nests.
//!
//! The random programs are generated from a fixed xorshift seed, so a
//! failure reproduces exactly; every assertion message carries the seed.

use dee_analyze::bitset::BitSet;
use dee_analyze::dataflow::{solve, transfer, Direction, GenKill, Meet};
use dee_analyze::flow::Flow;
use dee_analyze::passes::{Liveness, ReachingDefs};
use dee_analyze::structure::{find_loops, Doms};
use dee_isa::{AluOp, BranchCond, Instr, Reg};

/// xorshift64: deterministic, dependency-free pseudo-randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn reg(&mut self) -> Reg {
        Reg::new(self.below(8) as u8)
    }
}

/// A random program of `len` instructions with all targets in range.
fn random_program(rng: &mut Rng, len: u32) -> Vec<Instr> {
    (0..len)
        .map(|_| {
            let target = rng.below(u64::from(len)) as u32;
            match rng.below(10) {
                0 => Instr::Li {
                    rd: rng.reg(),
                    imm: rng.below(100) as i32,
                },
                1 => Instr::Alu {
                    op: AluOp::Add,
                    rd: rng.reg(),
                    rs: rng.reg(),
                    rt: rng.reg(),
                },
                2 => Instr::AluImm {
                    op: AluOp::Mul,
                    rd: rng.reg(),
                    rs: rng.reg(),
                    imm: 3,
                },
                3 => Instr::Lw {
                    rd: rng.reg(),
                    base: rng.reg(),
                    offset: rng.below(16) as i32,
                },
                4 => Instr::Sw {
                    rs: rng.reg(),
                    base: rng.reg(),
                    offset: rng.below(16) as i32,
                },
                5 => Instr::Branch {
                    cond: BranchCond::Ne,
                    rs: rng.reg(),
                    rt: rng.reg(),
                    target,
                },
                6 => Instr::Jump { target },
                7 => Instr::Jal { target },
                8 => Instr::Out { rs: rng.reg() },
                _ => Instr::Nop,
            }
        })
        .chain([Instr::Halt])
        .collect()
}

/// Checks the fixpoint equations of a solved pass at every node:
/// the merge side equals the meet over dataflow-predecessor facts (with
/// the boundary on the virtual edge) and the apply side equals the
/// transfer of the merge side.
fn assert_fixpoint(instrs: &[Instr], flow: &Flow, pass: &impl GenKill, seed: u64) {
    let solution = solve(flow, pass);
    let forward = pass.direction() == Direction::Forward;
    let boundary = pass.boundary();
    for pc in 0..instrs.len() as u32 {
        let edges: &[u32] = if forward {
            flow.predecessors(pc)
        } else {
            flow.successors(pc)
        };
        let mut expect: Option<BitSet> = None;
        for &e in edges {
            let fact = if e == flow.exit() {
                boundary.clone()
            } else if forward {
                solution.output[e as usize].clone()
            } else {
                solution.input[e as usize].clone()
            };
            expect = Some(match expect {
                None => fact,
                Some(mut acc) => {
                    match pass.meet() {
                        Meet::Union => acc.union_with(&fact),
                        Meet::Intersect => acc.intersect_with(&fact),
                    };
                    acc
                }
            });
        }
        // The entry of a forward pass folds the boundary in as a virtual
        // incoming edge.
        let mut expect = expect.unwrap_or_else(|| boundary.clone());
        if forward && pc == 0 {
            match pass.meet() {
                Meet::Union => expect.union_with(&boundary),
                Meet::Intersect => expect.intersect_with(&boundary),
            };
        }
        let (merge_side, apply_side) = if forward {
            (&solution.input[pc as usize], &solution.output[pc as usize])
        } else {
            (&solution.output[pc as usize], &solution.input[pc as usize])
        };
        assert_eq!(
            *merge_side, expect,
            "seed {seed}: merge equation violated at pc {pc}"
        );
        assert_eq!(
            *apply_side,
            transfer(pass, pc, merge_side),
            "seed {seed}: transfer equation violated at pc {pc}"
        );
    }
}

#[test]
fn fixpoint_equations_hold_on_random_programs() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    for round in 0..50u64 {
        let seed = rng.0;
        let len = 4 + rng.below(36) as u32;
        let instrs = random_program(&mut rng, len);
        let flow = Flow::new(&instrs);
        assert_fixpoint(&instrs, &flow, &Liveness::new(&instrs), seed);
        assert_fixpoint(&instrs, &flow, &ReachingDefs::new(&instrs), seed);
        let _ = round;
    }
}

#[test]
fn transfer_is_monotone() {
    // A ⊆ B ⇒ transfer(A) ⊆ transfer(B), for random subsets at random
    // program points. Monotonicity is what makes the worklist fixpoint
    // unique, so it is worth checking directly rather than trusting the
    // gen/kill algebra.
    fn check(pass: &impl GenKill, pc: u32, rng: &mut Rng, seed: u64) {
        let bits = pass.bits();
        let mut a = BitSet::new(bits);
        let mut b = BitSet::new(bits);
        for i in 0..bits {
            match rng.below(4) {
                0 => {
                    a.insert(i);
                    b.insert(i);
                }
                1 => {
                    b.insert(i);
                }
                _ => {}
            }
        }
        assert!(a.is_subset_of(&b));
        let ta = transfer(pass, pc, &a);
        let tb = transfer(pass, pc, &b);
        assert!(
            ta.is_subset_of(&tb),
            "seed {seed}: transfer not monotone at pc {pc}"
        );
    }
    let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
    for _ in 0..30 {
        let seed = rng.0;
        let len = 4 + rng.below(28) as u32;
        let instrs = random_program(&mut rng, len);
        let live = Liveness::new(&instrs);
        let reach = ReachingDefs::new(&instrs);
        for _ in 0..20 {
            let pc = rng.below(u64::from(len)) as u32;
            check(&live, pc, &mut rng, seed);
            check(&reach, pc, &mut rng, seed);
        }
    }
}

#[test]
fn liveness_contains_use_before_def_on_the_entry_prefix() {
    // Walk the straight-line prefix from entry (stop at the first control
    // transfer): any register read before it is written must be live-in at
    // pc 0. This pins liveness to an independently computable ground truth.
    let mut rng = Rng(0x1234_5678_9ABC_DEF1);
    for _ in 0..100 {
        let seed = rng.0;
        let len = 4 + rng.below(36) as u32;
        let instrs = random_program(&mut rng, len);
        let flow = Flow::new(&instrs);
        let live = Liveness::new(&instrs);
        let solution = live.solve(&flow);
        let mut written = [false; Reg::COUNT];
        let mut use_before_def = Vec::new();
        for instr in &instrs {
            for reg in instr.uses().into_iter().flatten() {
                if !written[reg.index()] {
                    use_before_def.push(reg);
                }
            }
            if let Some(reg) = instr.def() {
                written[reg.index()] = true;
            }
            if matches!(
                instr,
                Instr::Branch { .. }
                    | Instr::Jump { .. }
                    | Instr::Jal { .. }
                    | Instr::Jr { .. }
                    | Instr::Halt
            ) {
                break;
            }
        }
        for reg in use_before_def {
            assert!(
                solution.input[0].contains(reg.index()),
                "seed {seed}: {reg} read before written but not live-in at entry"
            );
        }
    }
}

#[test]
fn diamond_has_the_textbook_dominator_tree() {
    // 0: branch → 3        entry, dominates everything
    // 1: li r1, 1          left arm
    // 2: jump → 4
    // 3: li r1, 2          right arm
    // 4: out r1            join — idom is the *branch*, not either arm
    // 5: halt
    let instrs = [
        Instr::Branch {
            cond: BranchCond::Eq,
            rs: Reg::new(1),
            rt: Reg::ZERO,
            target: 3,
        },
        Instr::Li {
            rd: Reg::new(1),
            imm: 1,
        },
        Instr::Jump { target: 4 },
        Instr::Li {
            rd: Reg::new(1),
            imm: 2,
        },
        Instr::Out { rs: Reg::new(1) },
        Instr::Halt,
    ];
    let flow = Flow::new(&instrs);
    let doms = Doms::compute(&flow);
    assert_eq!(doms.idom(0), None, "entry has no idom");
    assert_eq!(doms.idom(1), Some(0));
    assert_eq!(doms.idom(2), Some(1));
    assert_eq!(doms.idom(3), Some(0));
    assert_eq!(doms.idom(4), Some(0), "join is dominated by the branch");
    assert_eq!(doms.idom(5), Some(4));
    assert!(doms.dominates(0, 5));
    assert!(!doms.dominates(1, 4));
    let forest = find_loops(&flow, &doms);
    assert!(forest.is_reducible());
    assert!(forest.loops.is_empty());
}

#[test]
fn nested_loops_have_the_expected_headers_and_nesting() {
    // 0: li r1, 0
    // 1: li r2, 0          outer header is 1? No: loops are defined by
    // 2: addi r2, r2, 1    back edges. inner: 2..=3 (3 → 2), outer:
    // 3: branch → 2        1..=5 (5 → 1).
    // 4: addi r1, r1, 1
    // 5: branch → 1
    // 6: halt
    let r1 = Reg::new(1);
    let r2 = Reg::new(2);
    let instrs = [
        Instr::Li { rd: r1, imm: 0 },
        Instr::Li { rd: r2, imm: 0 },
        Instr::AluImm {
            op: AluOp::Add,
            rd: r2,
            rs: r2,
            imm: 1,
        },
        Instr::Branch {
            cond: BranchCond::Lt,
            rs: r2,
            rt: r1,
            target: 2,
        },
        Instr::AluImm {
            op: AluOp::Add,
            rd: r1,
            rs: r1,
            imm: 1,
        },
        Instr::Branch {
            cond: BranchCond::Lt,
            rs: r1,
            rt: r2,
            target: 1,
        },
        Instr::Halt,
    ];
    let flow = Flow::new(&instrs);
    let doms = Doms::compute(&flow);
    let forest = find_loops(&flow, &doms);
    assert!(forest.is_reducible());
    let mut headers: Vec<u32> = forest.loops.iter().map(|l| l.header).collect();
    headers.sort_unstable();
    assert_eq!(headers, vec![1, 2]);
    let outer = forest.loops.iter().find(|l| l.header == 1).unwrap();
    let inner = forest.loops.iter().find(|l| l.header == 2).unwrap();
    for pc in [1u32, 2, 3, 4, 5] {
        assert!(outer.body.contains(&pc), "outer loop must contain {pc}");
    }
    assert_eq!(inner.body, vec![2, 3]);
    // Innermost containment: pc 2 sits in the inner loop, pc 4 only in
    // the outer one.
    assert_eq!(forest.innermost_containing(2).unwrap().header, 2);
    assert_eq!(forest.innermost_containing(4).unwrap().header, 1);
    assert!(forest.innermost_containing(0).is_none());
}

#[test]
fn jump_into_a_loop_body_is_irreducible() {
    // 0: branch → 3   jumps *into* the body of the loop {2, 3}, so the
    // 1: jump → 2     retreating edge 3 → 2 has a header that does not
    // 2: nop          dominate its source: a classic irreducible region.
    // 3: branch → 2
    // 4: halt
    let instrs = [
        Instr::Branch {
            cond: BranchCond::Eq,
            rs: Reg::new(1),
            rt: Reg::ZERO,
            target: 3,
        },
        Instr::Jump { target: 2 },
        Instr::Nop,
        Instr::Branch {
            cond: BranchCond::Ne,
            rs: Reg::new(1),
            rt: Reg::ZERO,
            target: 2,
        },
        Instr::Halt,
    ];
    let flow = Flow::new(&instrs);
    let doms = Doms::compute(&flow);
    let forest = find_loops(&flow, &doms);
    assert!(!forest.is_reducible());
    assert!(!forest.irreducible_edges.is_empty());
}
