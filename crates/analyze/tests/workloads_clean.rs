//! Every registered workload must be lint-clean at every scale, and its
//! dynamic trace must verify against the static branch census.

use dee_analyze::{analyze, BranchCensus};
use dee_workloads::{Scale, WorkloadRegistry};

#[test]
fn workloads_have_no_diagnostics_at_any_scale() {
    for scale in [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large] {
        for w in WorkloadRegistry::builtin().build_all(scale) {
            let report = analyze(&w.program);
            assert!(
                report.is_clean(),
                "{} @ {scale:?} not lint-clean:\n{}",
                w.name,
                report.render_text(&w.name)
            );
        }
    }
}

#[test]
fn workload_traces_verify_against_census() {
    for w in WorkloadRegistry::builtin().build_all(Scale::Tiny) {
        let census = BranchCensus::build(&w.program);
        let trace = w.capture_trace().expect("workload traces");
        let check = census
            .verify_trace(&trace)
            .unwrap_or_else(|e| panic!("{}: cross-check failed: {e}", w.name));
        assert_eq!(check.records, trace.records().len() as u64);
        // Every dynamic branch pc is a census member (by construction of a
        // passing verify), and the census covers at least those pcs.
        for pc in check.counts.keys() {
            assert!(census.branch(*pc).is_some());
        }
    }
}
