//! Static branch census and the static/dynamic trace cross-check.
//!
//! The census is the static half of the paper's DEE-tree inputs: every
//! conditional branch with its taxonomy (loop-back vs forward), its
//! reconvergence point (from [`dee_isa::cfg::PostDoms`]), and the static
//! path length to the next branch. The cross-check turns any `DEETRC1`
//! replay into a verifier: every dynamic record must be explainable by the
//! static program — branch PCs must be census members with the recorded
//! direction possibilities, operands must match the static def/use sets,
//! and consecutive PCs must follow a static edge. A trace that drifts from
//! its program (bit rot, version skew, a buggy mutation) produces a typed
//! [`CrossCheckError`], never a panic.

use std::collections::BTreeMap;
use std::fmt;

use dee_isa::cfg::Cfg;
use dee_isa::{Instr, Program};
use dee_vm::Trace;

/// Classification of a conditional branch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchKind {
    /// Taken edge closes a natural loop (target dominates the branch).
    LoopBack,
    /// Taken edge goes backward without closing a natural loop.
    Retreating,
    /// Taken edge goes forward.
    Forward,
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BranchKind::LoopBack => "loop-back",
            BranchKind::Retreating => "retreating",
            BranchKind::Forward => "forward",
        })
    }
}

/// Static facts about one conditional branch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchInfo {
    /// The branch address.
    pub pc: u32,
    /// The taken target.
    pub taken_target: u32,
    /// The not-taken successor (`pc + 1`, or the exit for a final branch).
    pub fallthrough: u32,
    /// Taxonomy of the taken edge.
    pub kind: BranchKind,
    /// Where taken and not-taken paths rejoin, if before program exit.
    pub reconvergence: Option<u32>,
    /// Instructions along the not-taken path until (and including) the next
    /// conditional branch, capped at the program length.
    pub static_path_len: u32,
}

/// What one instruction lets the dynamic successor PC be.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StepKind {
    /// Falls through to `pc + 1`.
    Fall,
    /// Unconditional transfer to a static target.
    Jump(u32),
    /// Conditional: taken target or fall-through.
    Cond { taken: u32 },
    /// Dynamic target (`jr`): any in-range PC.
    Indirect,
    /// Terminates execution (`halt`).
    Stop,
}

/// The static branch census of one program.
#[derive(Clone, Debug)]
pub struct BranchCensus {
    len: u32,
    branches: BTreeMap<u32, BranchInfo>,
    steps: Vec<StepKind>,
    defs: Vec<Option<dee_isa::Reg>>,
    uses: Vec<[Option<dee_isa::Reg>; 2]>,
}

impl BranchCensus {
    /// Builds the census from a validated program, using the simulator CFG
    /// (intraprocedural, like the timing models) for reconvergence and the
    /// dominator relation for the loop-back taxonomy.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let cfg = Cfg::new(program);
        let pdoms = cfg.postdominators();
        let flow = crate::flow::Flow::new(program.instrs());
        let doms = crate::structure::Doms::compute(&flow);

        let mut branches = BTreeMap::new();
        let mut steps = Vec::with_capacity(program.len());
        let mut defs = Vec::with_capacity(program.len());
        let mut uses = Vec::with_capacity(program.len());
        for (pc, instr) in program.iter() {
            defs.push(instr.def());
            uses.push(instr.uses());
            match *instr {
                Instr::Branch { target, .. } => {
                    let fallthrough = if (pc as usize) + 1 < program.len() {
                        pc + 1
                    } else {
                        cfg.exit()
                    };
                    let kind = if target <= pc && doms.dominates(target, pc) {
                        BranchKind::LoopBack
                    } else if target <= pc {
                        BranchKind::Retreating
                    } else {
                        BranchKind::Forward
                    };
                    branches.insert(
                        pc,
                        BranchInfo {
                            pc,
                            taken_target: target,
                            fallthrough,
                            kind,
                            reconvergence: pdoms.reconvergence(pc),
                            static_path_len: static_path_len(program, pc),
                        },
                    );
                    steps.push(StepKind::Cond { taken: target });
                }
                Instr::Jump { target } | Instr::Jal { target } => {
                    steps.push(StepKind::Jump(target))
                }
                Instr::Jr { .. } => steps.push(StepKind::Indirect),
                Instr::Halt => steps.push(StepKind::Stop),
                _ => steps.push(StepKind::Fall),
            }
        }
        BranchCensus {
            len: program.len() as u32,
            branches,
            steps,
            defs,
            uses,
        }
    }

    /// Number of instructions in the censused program.
    #[must_use]
    pub fn program_len(&self) -> u32 {
        self.len
    }

    /// All conditional branches, ascending by address.
    pub fn branches(&self) -> impl Iterator<Item = &BranchInfo> {
        self.branches.values()
    }

    /// The census entry for the branch at `pc`, if one exists.
    #[must_use]
    pub fn branch(&self, pc: u32) -> Option<&BranchInfo> {
        self.branches.get(&pc)
    }

    /// Number of conditional branches.
    #[must_use]
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// Number of loop-back branches.
    #[must_use]
    pub fn num_loop_back(&self) -> usize {
        self.branches
            .values()
            .filter(|b| b.kind == BranchKind::LoopBack)
            .count()
    }

    /// Mean static path length over all branches (0 when there are none).
    #[must_use]
    pub fn mean_static_path_len(&self) -> f64 {
        if self.branches.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .branches
            .values()
            .map(|b| u64::from(b.static_path_len))
            .sum();
        total as f64 / self.branches.len() as f64
    }

    /// Verifies a dynamic trace against this census.
    ///
    /// On success returns per-branch dynamic direction counts (the
    /// statistics a static DEE tree would be weighted with). Traces may be
    /// truncated (step limits), so the final record is not required to be a
    /// `halt`; every *consecutive* pair must still follow a static edge.
    pub fn verify_trace(&self, trace: &Trace) -> Result<CrossCheck, CrossCheckError> {
        let records = trace.records();
        let mut counts: BTreeMap<u32, DirectionCounts> = BTreeMap::new();
        for (index, rec) in records.iter().enumerate() {
            if rec.pc >= self.len {
                return Err(CrossCheckError::PcOutOfRange {
                    index,
                    pc: rec.pc,
                    len: self.len,
                });
            }
            let pc = rec.pc as usize;
            // Branch membership and direction possibilities.
            match (self.steps[pc], rec.branch) {
                (StepKind::Cond { taken }, Some(outcome)) => {
                    if outcome.target != taken {
                        return Err(CrossCheckError::TargetMismatch {
                            index,
                            pc: rec.pc,
                            expected: taken,
                            got: outcome.target,
                        });
                    }
                    let c = counts.entry(rec.pc).or_default();
                    if outcome.taken {
                        c.taken += 1;
                    } else {
                        c.not_taken += 1;
                    }
                }
                (StepKind::Cond { .. }, None) => {
                    return Err(CrossCheckError::MissingOutcome { index, pc: rec.pc });
                }
                (_, Some(_)) => {
                    return Err(CrossCheckError::NotABranch { index, pc: rec.pc });
                }
                _ => {}
            }
            // Operand consistency.
            if rec.dst != self.defs[pc] || rec.srcs != self.uses[pc] {
                return Err(CrossCheckError::OperandMismatch { index, pc: rec.pc });
            }
            // Successor consistency.
            if let Some(next) = records.get(index + 1) {
                let expected: Option<u32> = match self.steps[pc] {
                    StepKind::Fall => Some(rec.pc + 1),
                    StepKind::Jump(target) => Some(target),
                    StepKind::Cond { taken } => {
                        let outcome = rec.branch.expect("checked above");
                        Some(if outcome.taken { taken } else { rec.pc + 1 })
                    }
                    StepKind::Indirect => None,
                    StepKind::Stop => {
                        return Err(CrossCheckError::RecordAfterHalt { index, pc: rec.pc })
                    }
                };
                if let Some(e) = expected {
                    if next.pc != e {
                        return Err(CrossCheckError::SuccessorMismatch {
                            index,
                            pc: rec.pc,
                            expected: e,
                            got: next.pc,
                        });
                    }
                }
            }
        }
        Ok(CrossCheck {
            records: records.len() as u64,
            counts,
        })
    }
}

/// Dynamic taken/not-taken totals for one branch.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct DirectionCounts {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times it fell through.
    pub not_taken: u64,
}

/// A successful cross-check: the dynamic statistics backing the census.
#[derive(Clone, Debug)]
pub struct CrossCheck {
    /// Dynamic records verified.
    pub records: u64,
    /// Per-branch direction totals (only branches that executed appear).
    pub counts: BTreeMap<u32, DirectionCounts>,
}

/// A typed static/dynamic mismatch. `index` is the dynamic record index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrossCheckError {
    /// A record's PC is outside the program.
    PcOutOfRange {
        /// Dynamic record index.
        index: usize,
        /// The offending PC.
        pc: u32,
        /// The program length.
        len: u32,
    },
    /// A record carries a branch outcome but the static instruction is not
    /// a conditional branch.
    NotABranch {
        /// Dynamic record index.
        index: usize,
        /// The offending PC.
        pc: u32,
    },
    /// The static instruction is a conditional branch but the record has no
    /// outcome.
    MissingOutcome {
        /// Dynamic record index.
        index: usize,
        /// The offending PC.
        pc: u32,
    },
    /// The recorded taken-target differs from the static target.
    TargetMismatch {
        /// Dynamic record index.
        index: usize,
        /// The branch PC.
        pc: u32,
        /// Static taken-target.
        expected: u32,
        /// Recorded taken-target.
        got: u32,
    },
    /// A record's register operands differ from the static def/use sets.
    OperandMismatch {
        /// Dynamic record index.
        index: usize,
        /// The offending PC.
        pc: u32,
    },
    /// Consecutive records do not follow a static control-flow edge.
    SuccessorMismatch {
        /// Dynamic record index of the first record.
        index: usize,
        /// Its PC.
        pc: u32,
        /// The only PC the static program allows next.
        expected: u32,
        /// The PC the trace actually has next.
        got: u32,
    },
    /// A record follows a `halt`.
    RecordAfterHalt {
        /// Dynamic record index of the halt.
        index: usize,
        /// The halt's PC.
        pc: u32,
    },
}

impl fmt::Display for CrossCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CrossCheckError::PcOutOfRange { index, pc, len } => {
                write!(f, "record {index}: pc {pc} outside program of {len}")
            }
            CrossCheckError::NotABranch { index, pc } => write!(
                f,
                "record {index}: branch outcome at pc {pc}, which is not a conditional branch"
            ),
            CrossCheckError::MissingOutcome { index, pc } => write!(
                f,
                "record {index}: conditional branch at pc {pc} has no recorded outcome"
            ),
            CrossCheckError::TargetMismatch {
                index,
                pc,
                expected,
                got,
            } => write!(
                f,
                "record {index}: branch at pc {pc} records target {got}, census says {expected}"
            ),
            CrossCheckError::OperandMismatch { index, pc } => write!(
                f,
                "record {index}: operands at pc {pc} disagree with static def/use sets"
            ),
            CrossCheckError::SuccessorMismatch {
                index,
                pc,
                expected,
                got,
            } => write!(
                f,
                "record {index}: pc {pc} must be followed by {expected}, trace has {got}"
            ),
            CrossCheckError::RecordAfterHalt { index, pc } => {
                write!(f, "record {index}: records continue after halt at pc {pc}")
            }
        }
    }
}

impl std::error::Error for CrossCheckError {}

/// Instructions along the not-taken path from `pc` until (and including)
/// the next conditional branch, following unconditional control, capped at
/// the program length (cycles without branches terminate the walk).
fn static_path_len(program: &Program, pc: u32) -> u32 {
    let mut len = 0u32;
    let mut cur = pc as usize + 1;
    let cap = program.len() as u32;
    while len < cap {
        let Some(instr) = program.get(cur as u32) else {
            break;
        };
        len += 1;
        match *instr {
            Instr::Branch { .. } => break,
            Instr::Jump { target } | Instr::Jal { target } => cur = target as usize,
            Instr::Jr { .. } | Instr::Halt => break,
            _ => cur += 1,
        }
    }
    len
}
