//! Concrete dataflow passes: liveness, reaching definitions, and
//! constant-address memory bounds.
//!
//! All three run over the call-aware [`Flow`] graph with deliberately
//! conservative function-boundary conventions, so that lints derived from
//! them never fire on correct programs:
//!
//! - `jr` (return) is treated as **reading every register** — values live
//!   across a call boundary are never "dead";
//! - `jal` is treated as **defining every register** for reaching
//!   definitions — a callee may initialize registers its caller reads — and
//!   as clobbering every constant for the bounds pass.

use dee_isa::{Instr, Reg};

use crate::bitset::BitSet;
use crate::dataflow::{solve, Direction, GenKill, Meet, Solution};
use crate::flow::Flow;

/// Live-register analysis (backward, union).
///
/// Bit `r` at a point means register `r` may be read before being written
/// on some path from that point.
pub struct Liveness {
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl Liveness {
    /// Builds the gen/kill sets for `instrs`.
    #[must_use]
    pub fn new(instrs: &[Instr]) -> Self {
        let mut gen = Vec::with_capacity(instrs.len());
        let mut kill = Vec::with_capacity(instrs.len());
        for instr in instrs {
            let mut g = BitSet::new(Reg::COUNT);
            if matches!(instr, Instr::Jr { .. }) {
                // Function-boundary barrier: a return hands every register
                // back to a caller we cannot see.
                g = BitSet::full(Reg::COUNT);
                g.remove(Reg::ZERO.index());
            } else {
                for r in instr.uses().into_iter().flatten() {
                    g.insert(r.index());
                }
            }
            let mut k = BitSet::new(Reg::COUNT);
            if let Some(r) = instr.def() {
                k.insert(r.index());
            }
            gen.push(g);
            kill.push(k);
        }
        Liveness { gen, kill }
    }

    /// Solves the problem over `flow`.
    #[must_use]
    pub fn solve(&self, flow: &Flow) -> Solution {
        solve(flow, self)
    }
}

impl GenKill for Liveness {
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn bits(&self) -> usize {
        Reg::COUNT
    }
    fn gen(&self, pc: u32) -> &BitSet {
        &self.gen[pc as usize]
    }
    fn kill(&self, pc: u32) -> &BitSet {
        &self.kill[pc as usize]
    }
}

/// Reaching definitions (forward, union) over definition *sites*.
///
/// Each `(pc, reg)` write is a site; `jal` is a pseudo-site for every
/// register (a callee may write anything before control returns). Bit `d`
/// at a point means site `d`'s value may still be the register's current
/// value there.
pub struct ReachingDefs {
    /// Definition sites, `(pc, reg)`, in site-index order.
    sites: Vec<(u32, Reg)>,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl ReachingDefs {
    /// Builds site tables and gen/kill sets for `instrs`.
    #[must_use]
    pub fn new(instrs: &[Instr]) -> Self {
        let mut sites: Vec<(u32, Reg)> = Vec::new();
        let mut site_of: Vec<Vec<usize>> = vec![Vec::new(); instrs.len()];
        for (pc, instr) in instrs.iter().enumerate() {
            if matches!(instr, Instr::Jal { .. }) {
                for r in Reg::all() {
                    if r.is_zero() {
                        continue;
                    }
                    site_of[pc].push(sites.len());
                    sites.push((pc as u32, r));
                }
            } else if let Some(r) = instr.def() {
                site_of[pc].push(sites.len());
                sites.push((pc as u32, r));
            }
        }
        // Per-register site lists, for kill sets.
        let mut by_reg: Vec<Vec<usize>> = vec![Vec::new(); Reg::COUNT];
        for (i, &(_, r)) in sites.iter().enumerate() {
            by_reg[r.index()].push(i);
        }
        let bits = sites.len();
        let mut gen = Vec::with_capacity(instrs.len());
        let mut kill = Vec::with_capacity(instrs.len());
        for (pc, _) in instrs.iter().enumerate() {
            let mut g = BitSet::new(bits);
            let mut k = BitSet::new(bits);
            for &site in &site_of[pc] {
                g.insert(site);
                let (_, reg) = sites[site];
                for &other in &by_reg[reg.index()] {
                    if other != site {
                        k.insert(other);
                    }
                }
            }
            gen.push(g);
            kill.push(k);
        }
        ReachingDefs { sites, gen, kill }
    }

    /// The definition sites, in bit order.
    #[must_use]
    pub fn sites(&self) -> &[(u32, Reg)] {
        &self.sites
    }

    /// Solves the problem over `flow`.
    #[must_use]
    pub fn solve(&self, flow: &Flow) -> Solution {
        solve(flow, self)
    }

    /// Whether any definition of `reg` is present in the fact set `facts`.
    #[must_use]
    pub fn any_def_of(&self, facts: &BitSet, reg: Reg) -> bool {
        facts.iter().any(|site| self.sites[site].1 == reg)
    }
}

impl GenKill for ReachingDefs {
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn bits(&self) -> usize {
        self.sites.len()
    }
    fn gen(&self, pc: u32) -> &BitSet {
        &self.gen[pc as usize]
    }
    fn kill(&self, pc: u32) -> &BitSet {
        &self.kill[pc as usize]
    }
}

/// A constant-propagation lattice value for one register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Const {
    /// Known constant on every path reaching this point.
    Val(i32),
    /// Not a constant (or unknown).
    Nac,
}

impl Const {
    fn meet(a: Const, b: Const) -> Const {
        match (a, b) {
            (Const::Val(x), Const::Val(y)) if x == y => Const::Val(x),
            _ => Const::Nac,
        }
    }
}

/// Per-instruction constant register states (the in-state of each pc).
///
/// `None` means the instruction is unreachable. The entry state is all
/// `Val(0)`: the VM zero-initializes its register file, so that is ground
/// truth, not an assumption.
pub struct ConstStates {
    states: Vec<Option<[Const; Reg::COUNT]>>,
}

impl ConstStates {
    /// Runs conditional-constant-free constant propagation to a fixpoint.
    #[must_use]
    pub fn compute(instrs: &[Instr], flow: &Flow) -> Self {
        let n = instrs.len();
        let mut states: Vec<Option<[Const; Reg::COUNT]>> = vec![None; n];
        if n == 0 {
            return ConstStates { states };
        }
        states[0] = Some([Const::Val(0); Reg::COUNT]);
        let mut worklist = vec![0u32];
        let mut queued = vec![false; n];
        queued[0] = true;
        while let Some(pc) = worklist.pop() {
            queued[pc as usize] = false;
            let state = states[pc as usize].expect("queued nodes have a state");
            let out = transfer(&instrs[pc as usize], pc, state);
            for &s in flow.successors(pc) {
                if s == flow.exit() {
                    continue;
                }
                let slot = &mut states[s as usize];
                let merged = match *slot {
                    None => out,
                    Some(prev) => {
                        let mut m = prev;
                        for (mi, oi) in m.iter_mut().zip(out.iter()) {
                            *mi = Const::meet(*mi, *oi);
                        }
                        m
                    }
                };
                if *slot != Some(merged) {
                    *slot = Some(merged);
                    if !queued[s as usize] {
                        queued[s as usize] = true;
                        worklist.push(s);
                    }
                }
            }
        }
        ConstStates { states }
    }

    /// The in-state at `pc` (`None` when unreachable).
    #[must_use]
    pub fn at(&self, pc: u32) -> Option<&[Const; Reg::COUNT]> {
        self.states.get(pc as usize).and_then(Option::as_ref)
    }

    /// The constant word address accessed by the memory instruction at
    /// `pc`, when its base register is a known constant there.
    #[must_use]
    pub fn const_address(&self, pc: u32, instr: &Instr) -> Option<i64> {
        let state = self.at(pc)?;
        let (base, offset) = match *instr {
            Instr::Lw { base, offset, .. } | Instr::Sw { base, offset, .. } => (base, offset),
            _ => return None,
        };
        match state[base.index()] {
            Const::Val(b) => Some(i64::from(b) + i64::from(offset)),
            Const::Nac => None,
        }
    }
}

fn transfer(instr: &Instr, pc: u32, mut state: [Const; Reg::COUNT]) -> [Const; Reg::COUNT] {
    match *instr {
        Instr::Li { rd, imm } => set(&mut state, rd, Const::Val(imm)),
        Instr::AluImm { op, rd, rs, imm } => {
            let v = match state[rs.index()] {
                Const::Val(a) => Const::Val(op.apply(a, imm)),
                Const::Nac => Const::Nac,
            };
            set(&mut state, rd, v);
        }
        Instr::Alu { op, rd, rs, rt } => {
            let v = match (state[rs.index()], state[rt.index()]) {
                (Const::Val(a), Const::Val(b)) => Const::Val(op.apply(a, b)),
                _ => Const::Nac,
            };
            set(&mut state, rd, v);
        }
        Instr::Lw { rd, .. } => set(&mut state, rd, Const::Nac),
        Instr::Jal { .. } => {
            // A call may clobber anything by the time control reaches the
            // continuation; the callee entry shares the same out-state, so
            // be uniformly conservative (the return address is still pc+1,
            // but tracking it buys nothing downstream).
            for r in Reg::all() {
                set(&mut state, r, Const::Nac);
            }
            let _ = pc;
        }
        _ => {}
    }
    state
}

fn set(state: &mut [Const; Reg::COUNT], rd: Reg, v: Const) {
    if !rd.is_zero() {
        state[rd.index()] = v;
    } else {
        state[Reg::ZERO.index()] = Const::Val(0);
    }
}
