//! The analysis flow graph: a call-aware variant of [`dee_isa::cfg::Cfg`].
//!
//! The simulator CFG in `dee_isa` is deliberately *intraprocedural*: `jal`
//! falls through to its continuation (callees are opaque) because that is the
//! shape the timing models and reconvergence machinery want. Static analysis
//! wants the opposite: callee bodies must be reachable (or every function is
//! "unreachable code") and dataflow must not pretend a call is a no-op. This
//! module builds that graph:
//!
//! - `jal` gets edges to **both** the callee entry and the continuation, so
//!   callees are reachable and facts flow into them;
//! - `jr` is an exit edge (returns are resolved dynamically), and the passes
//!   in [`crate::passes`] treat it as reading every register so values that
//!   are live across a function boundary are never declared dead;
//! - statically out-of-range targets are recorded (they become
//!   `DEE-E005`) and clamped to the synthetic exit node so every other pass
//!   still runs on a well-formed graph.
//!
//! Like `Cfg`, node `len` is a synthetic exit; an instruction at the last
//! address that can fall through gets an explicit edge to it.

use dee_isa::Instr;

/// A statically out-of-range control-flow target, `(pc, target)`.
pub type OobTarget = (u32, u32);

/// Call-aware control-flow graph over a raw instruction slice.
#[derive(Clone, Debug)]
pub struct Flow {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    exit: u32,
    oob: Vec<OobTarget>,
}

impl Flow {
    /// Builds the analysis graph. Never fails: malformed targets are
    /// reported via [`oob_targets`](Flow::oob_targets) and rerouted to the
    /// exit node.
    #[must_use]
    pub fn new(instrs: &[Instr]) -> Self {
        let n = instrs.len();
        let exit = n as u32;
        let mut oob = Vec::new();
        let mut clamp = |pc: u32, target: u32| -> u32 {
            if (target as usize) < n {
                target
            } else {
                oob.push((pc, target));
                exit
            }
        };
        let mut succs: Vec<Vec<u32>> = Vec::with_capacity(n + 1);
        for (i, instr) in instrs.iter().enumerate() {
            let pc = i as u32;
            let fall = if i + 1 < n { pc + 1 } else { exit };
            let out = match *instr {
                Instr::Branch { target, .. } => {
                    let t = clamp(pc, target);
                    if t == fall {
                        vec![fall]
                    } else {
                        vec![t, fall]
                    }
                }
                Instr::Jump { target } => vec![clamp(pc, target)],
                Instr::Jal { target } => {
                    let t = clamp(pc, target);
                    if t == fall {
                        vec![fall]
                    } else {
                        vec![t, fall]
                    }
                }
                Instr::Jr { .. } | Instr::Halt => vec![exit],
                _ => vec![fall],
            };
            succs.push(out);
        }
        succs.push(Vec::new());
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        for (pc, out) in succs.iter().enumerate() {
            for &s in out {
                preds[s as usize].push(pc as u32);
            }
        }
        Flow {
            succs,
            preds,
            exit,
            oob,
        }
    }

    /// Number of real (non-exit) nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.exit as usize
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.exit == 0
    }

    /// The synthetic exit node index (`== len()`).
    #[must_use]
    pub fn exit(&self) -> u32 {
        self.exit
    }

    /// Successors of `pc` (the exit node has none).
    #[must_use]
    pub fn successors(&self, pc: u32) -> &[u32] {
        &self.succs[pc as usize]
    }

    /// Predecessors of `pc`.
    #[must_use]
    pub fn predecessors(&self, pc: u32) -> &[u32] {
        &self.preds[pc as usize]
    }

    /// Statically out-of-range targets found while building the graph.
    #[must_use]
    pub fn oob_targets(&self) -> &[OobTarget] {
        &self.oob
    }

    /// Per-instruction reachability from entry (index 0); the trailing
    /// element is the exit node.
    #[must_use]
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.exit as usize + 1];
        if self.is_empty() {
            return seen;
        }
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(pc) = stack.pop() {
            for &s in self.successors(pc) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::{BranchCond, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn jal_has_both_edges() {
        // 0: jal 2 / 1: halt / 2: jr ra
        let instrs = vec![
            Instr::Jal { target: 2 },
            Instr::Halt,
            Instr::Jr { rs: Reg::RA },
        ];
        let flow = Flow::new(&instrs);
        assert_eq!(flow.successors(0), &[2, 1]);
        assert_eq!(flow.successors(2), &[flow.exit()]);
        assert!(flow.reachable()[2], "callee body must be reachable");
    }

    #[test]
    fn oob_target_clamped_and_recorded() {
        let instrs = vec![
            Instr::Branch {
                cond: BranchCond::Eq,
                rs: r(1),
                rt: r(2),
                target: 9,
            },
            Instr::Halt,
        ];
        let flow = Flow::new(&instrs);
        assert_eq!(flow.oob_targets(), &[(0, 9)]);
        assert_eq!(flow.successors(0), &[flow.exit(), 1]);
    }

    #[test]
    fn trailing_fall_through_reaches_exit() {
        let instrs = vec![Instr::Halt, Instr::Nop];
        let flow = Flow::new(&instrs);
        assert_eq!(flow.successors(1), &[flow.exit()]);
    }
}
