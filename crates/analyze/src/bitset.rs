//! A small fixed-width bit set used as the dataflow lattice element.
//!
//! Dataflow facts over a program are sets drawn from a finite universe
//! (registers for liveness, definition sites for reaching definitions), so a
//! dense `u64`-word bit set gives transfer functions and meets that are a
//! handful of word operations. Everything here is `std`-only by design.

/// A dense, fixed-universe bit set.
///
/// The universe size is fixed at construction; all binary operations require
/// both operands to share a universe and panic otherwise (mixing universes is
/// always an analysis bug, never a recoverable condition).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    bits: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set over a universe of `bits` elements.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        BitSet {
            bits,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// A full set over a universe of `bits` elements.
    #[must_use]
    pub fn full(bits: usize) -> Self {
        let mut s = BitSet::new(bits);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// The universe size (not the population count).
    #[must_use]
    pub fn universe(&self) -> usize {
        self.bits
    }

    /// Number of elements present.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no element is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `i` is present.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Inserts `i`; returns whether the set changed.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.bits, "bit {i} outside universe {}", self.bits);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let changed = *w & mask == 0;
        *w |= mask;
        changed
    }

    /// Removes `i`; returns whether the set changed.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.bits, "bit {i} outside universe {}", self.bits);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let changed = *w & mask != 0;
        *w &= !mask;
        changed
    }

    /// `self |= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.bits, other.bits, "bitset universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= other`; returns whether `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.bits, other.bits, "bitset universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= !other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.bits, other.bits, "bitset universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Whether every element of `self` is also in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.bits, other.bits, "bitset universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates the present elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// Clears any bits beyond the universe (after a whole-word fill).
    fn trim(&mut self) {
        let tail = self.bits % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn full_respects_universe() {
        let s = BitSet::full(67);
        assert_eq!(s.count(), 67);
        assert!(s.contains(66));
    }

    #[test]
    fn union_intersect_subtract() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(65);
        b.insert(3);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 65]);
        assert!(!u.union_with(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![65]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
        assert!(i.is_subset_of(&u));
        assert!(!u.is_subset_of(&i));
    }
}
