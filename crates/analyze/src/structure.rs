//! Control-flow structure: dominators, natural loops, reducibility.
//!
//! The forward mirror of the post-dominator machinery in
//! [`dee_isa::cfg`]: the same Cooper–Harvey–Kennedy iterative scheme, run
//! from the entry over the call-aware [`Flow`] graph. On top of the
//! dominator tree we classify back edges, collect natural loops (the input
//! to the static DEE tree's loop taxonomy), and decide reducibility: a
//! retreating edge whose target does not dominate its source makes the
//! graph irreducible, which is exactly the shape that defeats loop-based
//! speculation heuristics (hence the `DEE-W010` lint).

use crate::flow::Flow;

/// Immediate-dominator tree for a [`Flow`] graph.
#[derive(Clone, Debug)]
pub struct Doms {
    idom: Vec<Option<u32>>,
    order: Vec<u32>,
}

impl Doms {
    /// Computes dominators from the entry (pc 0) with the iterative
    /// Cooper–Harvey–Kennedy algorithm over a reverse-postorder walk.
    #[must_use]
    pub fn compute(flow: &Flow) -> Self {
        let n = flow.len() + 1; // include the synthetic exit
        let mut idom: Vec<Option<u32>> = vec![None; n];
        if flow.is_empty() {
            return Doms {
                idom,
                order: Vec::new(),
            };
        }

        // Reverse postorder from the entry; unreachable nodes are skipped
        // and keep `idom == None`.
        let order = reverse_postorder(flow);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &pc) in order.iter().enumerate() {
            rpo_index[pc as usize] = i;
        }

        idom[0] = Some(0);
        let mut changed = true;
        while changed {
            changed = false;
            for &pc in order.iter().skip(1) {
                let mut new_idom: Option<u32> = None;
                for &p in flow.predecessors(pc) {
                    if idom[p as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[pc as usize] != Some(ni) {
                        idom[pc as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Doms { idom, order }
    }

    /// The immediate dominator of `pc` (`None` for the entry and for
    /// unreachable nodes).
    #[must_use]
    pub fn idom(&self, pc: u32) -> Option<u32> {
        match self.idom.get(pc as usize).copied().flatten() {
            Some(d) if pc != 0 => Some(d),
            _ => None,
        }
    }

    /// Whether `pc` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, pc: u32) -> bool {
        self.idom.get(pc as usize).is_some_and(Option::is_some)
    }

    /// Whether `a` dominates `b` (reflexively). Unreachable nodes are
    /// dominated by nothing and dominate nothing.
    #[must_use]
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == 0 {
                return false;
            }
            match self.idom[cur as usize] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// The reverse-postorder node sequence used by the solver (reachable
    /// nodes only).
    #[must_use]
    pub fn reverse_postorder(&self) -> &[u32] {
        &self.order
    }
}

fn intersect(idom: &[Option<u32>], rpo_index: &[usize], a: u32, b: u32) -> u32 {
    let (mut a, mut b) = (a, b);
    while a != b {
        while rpo_index[a as usize] > rpo_index[b as usize] {
            a = idom[a as usize].expect("processed node has an idom");
        }
        while rpo_index[b as usize] > rpo_index[a as usize] {
            b = idom[b as usize].expect("processed node has an idom");
        }
    }
    a
}

fn reverse_postorder(flow: &Flow) -> Vec<u32> {
    let n = flow.len() + 1;
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut post = Vec::new();
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&mut (pc, ref mut next)) = stack.last_mut() {
        let succs = flow.successors(pc);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if state[s as usize] == 0 {
                state[s as usize] = 1;
                stack.push((s, 0));
            }
        } else {
            state[pc as usize] = 2;
            post.push(pc);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// A natural loop: a back edge's target plus every node that can reach the
/// back edge's source without passing through the header.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (dominates every node in `body`).
    pub header: u32,
    /// Sources of the back edges closing this loop.
    pub back_edges: Vec<u32>,
    /// All nodes in the loop, ascending, including the header.
    pub body: Vec<u32>,
}

/// The loop structure of a flow graph.
#[derive(Clone, Debug)]
pub struct LoopForest {
    /// Natural loops, one per distinct header, ascending by header.
    pub loops: Vec<NaturalLoop>,
    /// Retreating edges `(src, dst)` that are not natural back edges; the
    /// graph is reducible iff this is empty.
    pub irreducible_edges: Vec<(u32, u32)>,
}

impl LoopForest {
    /// Whether the graph is reducible.
    #[must_use]
    pub fn is_reducible(&self) -> bool {
        self.irreducible_edges.is_empty()
    }

    /// The innermost loop (smallest body) containing `pc`, if any.
    #[must_use]
    pub fn innermost_containing(&self, pc: u32) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.body.binary_search(&pc).is_ok())
            .min_by_key(|l| l.body.len())
    }
}

/// Finds natural loops and irreducible retreating edges.
///
/// An edge `u → v` is *retreating* when `v` is an ancestor of `u` in the
/// depth-first spanning tree (equivalently, `v`'s DFS interval encloses
/// `u`'s); it is a *natural back edge* when additionally `v` dominates `u`.
/// Reducibility — every retreating edge is a back edge — is independent of
/// the DFS order chosen.
#[must_use]
pub fn find_loops(flow: &Flow, doms: &Doms) -> LoopForest {
    use std::collections::BTreeMap;

    // DFS intervals (entry/exit times) to classify retreating edges.
    let n = flow.len() + 1;
    let mut discover = vec![u32::MAX; n];
    let mut finish = vec![u32::MAX; n];
    let mut clock = 0u32;
    if !flow.is_empty() {
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        discover[0] = clock;
        clock += 1;
        while let Some(&mut (pc, ref mut next)) = stack.last_mut() {
            let succs = flow.successors(pc);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if discover[s as usize] == u32::MAX {
                    discover[s as usize] = clock;
                    clock += 1;
                    stack.push((s, 0));
                }
            } else {
                finish[pc as usize] = clock;
                clock += 1;
                stack.pop();
            }
        }
    }
    let is_ancestor = |v: u32, u: u32| -> bool {
        discover[v as usize] <= discover[u as usize] && finish[u as usize] <= finish[v as usize]
    };

    let mut back_edges: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut irreducible = Vec::new();
    for pc in 0..flow.len() as u32 {
        if discover[pc as usize] == u32::MAX {
            continue; // unreachable
        }
        for &s in flow.successors(pc) {
            if s == flow.exit() || discover[s as usize] == u32::MAX {
                continue;
            }
            if is_ancestor(s, pc) {
                if doms.dominates(s, pc) {
                    back_edges.entry(s).or_default().push(pc);
                } else {
                    irreducible.push((pc, s));
                }
            }
        }
    }

    let mut loops = Vec::new();
    for (header, sources) in back_edges {
        let mut body = vec![header];
        let mut seen = vec![false; n];
        seen[header as usize] = true;
        let mut stack = Vec::new();
        for &src in &sources {
            if !seen[src as usize] {
                seen[src as usize] = true;
                stack.push(src);
            }
        }
        while let Some(pc) = stack.pop() {
            body.push(pc);
            for &p in flow.predecessors(pc) {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        body.sort_unstable();
        loops.push(NaturalLoop {
            header,
            back_edges: sources,
            body,
        });
    }
    LoopForest {
        loops,
        irreducible_edges: irreducible,
    }
}
