//! Typed diagnostics: lint codes, severities, and rendered reports.
//!
//! Every diagnostic carries a stable code (`DEE-Wnnn` / `DEE-Ennn`) so that
//! CI gates, the serve API's 422 responses, and golden CSVs can match on
//! codes rather than message text. Codes are append-only: never renumber.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but executable; rejected only under `--deny warnings`.
    Warning,
    /// The program is malformed or guaranteed to fault; execution refused.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The stable lint catalogue.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Lint {
    /// `DEE-W001`: instructions no path from entry can execute.
    UnreachableCode,
    /// `DEE-E002`: the program has no instructions.
    EmptyProgram,
    /// `DEE-E003`: a reachable read of a register no path has written.
    UninitializedRegisterRead,
    /// `DEE-E004`: the program contains no `halt` instruction at all.
    NoHalt,
    /// `DEE-E005`: a branch/jump/call target outside the program.
    JumpTargetOutOfRange,
    /// `DEE-W007`: a register write no path ever reads.
    DeadStore,
    /// `DEE-W010`: a retreating edge that closes no natural loop.
    IrreducibleLoop,
    /// `DEE-E011`: a store to a constant address outside data memory.
    OobConstantStore,
    /// `DEE-W012`: execution can fall off the end of the program.
    MissingHalt,
    /// `DEE-E013`: a load from a constant address outside data memory.
    OobConstantLoad,
}

impl Lint {
    /// All lints, in code order.
    pub const ALL: [Lint; 10] = [
        Lint::UnreachableCode,
        Lint::EmptyProgram,
        Lint::UninitializedRegisterRead,
        Lint::NoHalt,
        Lint::JumpTargetOutOfRange,
        Lint::DeadStore,
        Lint::IrreducibleLoop,
        Lint::OobConstantStore,
        Lint::MissingHalt,
        Lint::OobConstantLoad,
    ];

    /// The stable machine-readable code, e.g. `DEE-W001`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Lint::UnreachableCode => "DEE-W001",
            Lint::EmptyProgram => "DEE-E002",
            Lint::UninitializedRegisterRead => "DEE-E003",
            Lint::NoHalt => "DEE-E004",
            Lint::JumpTargetOutOfRange => "DEE-E005",
            Lint::DeadStore => "DEE-W007",
            Lint::IrreducibleLoop => "DEE-W010",
            Lint::OobConstantStore => "DEE-E011",
            Lint::MissingHalt => "DEE-W012",
            Lint::OobConstantLoad => "DEE-E013",
        }
    }

    /// The short human-readable name, e.g. `unreachable-code`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnreachableCode => "unreachable-code",
            Lint::EmptyProgram => "empty-program",
            Lint::UninitializedRegisterRead => "uninitialized-register-read",
            Lint::NoHalt => "no-halt",
            Lint::JumpTargetOutOfRange => "jump-target-out-of-range",
            Lint::DeadStore => "dead-store",
            Lint::IrreducibleLoop => "irreducible-loop",
            Lint::OobConstantStore => "oob-constant-store",
            Lint::MissingHalt => "missing-halt",
            Lint::OobConstantLoad => "oob-constant-load",
        }
    }

    /// The fixed severity of this lint.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Lint::UnreachableCode | Lint::DeadStore | Lint::IrreducibleLoop | Lint::MissingHalt => {
                Severity::Warning
            }
            Lint::EmptyProgram
            | Lint::UninitializedRegisterRead
            | Lint::NoHalt
            | Lint::JumpTargetOutOfRange
            | Lint::OobConstantStore
            | Lint::OobConstantLoad => Severity::Error,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One finding: a lint instance anchored (usually) at an instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// The instruction address it is anchored at, when meaningful.
    pub pc: Option<u32>,
    /// Human-readable detail (never needed for machine matching).
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic anchored at `pc`.
    #[must_use]
    pub fn at(lint: Lint, pc: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            pc: Some(pc),
            message: message.into(),
        }
    }

    /// Builds a program-level diagnostic with no anchor.
    #[must_use]
    pub fn global(lint: Lint, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            pc: None,
            message: message.into(),
        }
    }

    /// The diagnostic's severity (inherited from its lint).
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.lint.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(
                f,
                "{}: {} [{}] @{}: {}",
                self.severity(),
                self.lint.name(),
                self.lint.code(),
                pc,
                self.message
            ),
            None => write!(
                f,
                "{}: {} [{}]: {}",
                self.severity(),
                self.lint.name(),
                self.lint.code(),
                self.message
            ),
        }
    }
}

/// The result of analysing one program: all findings, sorted by address
/// then code.
#[derive(Clone, Default, Debug)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wraps raw findings, sorting them into the canonical order.
    #[must_use]
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by_key(|d| (d.pc.map_or(u64::MAX, u64::from), d.lint));
        Report { diagnostics }
    }

    /// All findings, canonical order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of `Error`-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether any `Error`-severity finding is present.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the report is completely clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether a specific lint fired anywhere.
    #[must_use]
    pub fn has(&self, lint: Lint) -> bool {
        self.diagnostics.iter().any(|d| d.lint == lint)
    }

    /// The distinct codes present, canonical order, deduplicated.
    #[must_use]
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diagnostics.iter().map(|d| d.lint.code()).collect();
        codes.dedup();
        let mut seen = Vec::new();
        for c in codes {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    }

    /// Renders the report as human-readable text, one finding per line plus
    /// a summary line.
    #[must_use]
    pub fn render_text(&self, label: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{label}: {d}\n"));
        }
        out.push_str(&format!(
            "{label}: {} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Renders the report as a JSON object (hand-rolled; the workspace is
    /// dependency-free).
    #[must_use]
    pub fn render_json(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"program\":");
        push_json_string(&mut out, label);
        out.push_str(&format!(
            ",\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"pc\":",
                d.lint.code(),
                d.lint.name(),
                d.severity()
            ));
            match d.pc {
                Some(pc) => out.push_str(&pc.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"message\":");
            push_json_string(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<_> = Lint::ALL.iter().map(|l| l.code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Lint::ALL.len());
        assert_eq!(Lint::UnreachableCode.code(), "DEE-W001");
        assert_eq!(Lint::UninitializedRegisterRead.code(), "DEE-E003");
        assert_eq!(Lint::JumpTargetOutOfRange.code(), "DEE-E005");
        assert_eq!(Lint::DeadStore.code(), "DEE-W007");
        assert_eq!(Lint::IrreducibleLoop.code(), "DEE-W010");
        assert_eq!(Lint::OobConstantStore.code(), "DEE-E011");
        assert_eq!(Lint::MissingHalt.code(), "DEE-W012");
    }

    #[test]
    fn report_sorts_and_counts() {
        let r = Report::new(vec![
            Diagnostic::at(Lint::DeadStore, 7, "x"),
            Diagnostic::global(Lint::NoHalt, "y"),
            Diagnostic::at(Lint::UnreachableCode, 2, "z"),
        ]);
        assert_eq!(r.diagnostics()[0].pc, Some(2));
        assert_eq!(r.diagnostics()[2].pc, None);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 2);
        assert!(r.has_errors());
        assert_eq!(r.codes(), vec!["DEE-W001", "DEE-W007", "DEE-E004"]);
    }

    #[test]
    fn json_escapes_strings() {
        let r = Report::new(vec![Diagnostic::at(Lint::DeadStore, 1, "a\"b\\c\nd")]);
        let json = r.render_json("p\"q");
        assert!(json.contains("\"program\":\"p\\\"q\""));
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }
}
