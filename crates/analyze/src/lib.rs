//! Static analysis for toy-ISA programs.
//!
//! The paper's static DEE tree (§4) is derived from *static* program
//! structure plus branch statistics; this crate supplies that static half
//! and uses it to harden every place programs enter the system:
//!
//! - [`flow`]: a call-aware control-flow graph (the analysis twin of the
//!   simulator's [`dee_isa::cfg::Cfg`]);
//! - [`structure`]: dominators, natural loops, and reducibility;
//! - [`dataflow`] + [`passes`]: a generic forward/backward bitset dataflow
//!   framework with liveness, reaching definitions, and constant-address
//!   bounds passes;
//! - [`lint`]: typed diagnostics with stable `DEE-*` codes, rendered as
//!   text or JSON;
//! - [`census`]: the static branch census and the static/dynamic
//!   cross-check that turns trace replay into a verifier.
//!
//! The top-level entry points are [`analyze`] for validated programs,
//! [`analyze_instrs`] for raw instruction slices (which additionally
//! reports the shape errors [`dee_isa::Program::new`] would refuse), and
//! [`BranchCensus::build`] for the census.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod census;
pub mod dataflow;
pub mod flow;
pub mod lint;
pub mod passes;
pub mod structure;

use dee_isa::{Instr, Program};

pub use census::{BranchCensus, BranchInfo, BranchKind, CrossCheck, CrossCheckError};
pub use lint::{Diagnostic, Lint, Report, Severity};

/// Tunables for [`analyze_with`] / [`analyze_instrs`].
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeConfig {
    /// Data-memory size in words; constant addresses outside `0..mem_words`
    /// raise `DEE-E011` / `DEE-E013`.
    pub mem_words: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            mem_words: dee_vm::DEFAULT_MEM_WORDS,
        }
    }
}

/// Analyses a validated program with default configuration.
#[must_use]
pub fn analyze(program: &Program) -> Report {
    analyze_instrs(program.instrs(), &AnalyzeConfig::default())
}

/// Analyses a validated program with explicit configuration.
#[must_use]
pub fn analyze_with(program: &Program, config: &AnalyzeConfig) -> Report {
    analyze_instrs(program.instrs(), config)
}

/// Analyses a raw instruction slice.
///
/// Unlike [`analyze`], the input need not satisfy [`Program::new`]'s
/// invariants: an empty slice, missing `halt`, or out-of-range targets are
/// reported as `DEE-E002` / `DEE-E004` / `DEE-E005` diagnostics (with the
/// offending edges rerouted to the synthetic exit so the remaining passes
/// still run) instead of being unrepresentable.
#[must_use]
pub fn analyze_instrs(instrs: &[Instr], config: &AnalyzeConfig) -> Report {
    use lint::{Diagnostic, Lint};

    if instrs.is_empty() {
        return Report::new(vec![Diagnostic::global(
            Lint::EmptyProgram,
            "the program has no instructions",
        )]);
    }

    let mut diags = Vec::new();
    let flow = flow::Flow::new(instrs);

    // DEE-E005: statically out-of-range control-flow targets.
    for &(pc, target) in flow.oob_targets() {
        diags.push(Diagnostic::at(
            Lint::JumpTargetOutOfRange,
            pc,
            format!(
                "target {target} outside program of {} instructions",
                instrs.len()
            ),
        ));
    }

    // DEE-E004: no halt anywhere.
    if !instrs.iter().any(|i| matches!(i, Instr::Halt)) {
        diags.push(Diagnostic::global(
            Lint::NoHalt,
            "the program contains no halt instruction",
        ));
    }

    let reachable = flow.reachable();

    // DEE-W012: a reachable final instruction can fall off the end.
    let last = instrs.len() - 1;
    let falls_off = !matches!(
        instrs[last],
        Instr::Jump { .. } | Instr::Jr { .. } | Instr::Halt
    );
    if falls_off && reachable[last] {
        diags.push(Diagnostic::at(
            Lint::MissingHalt,
            last as u32,
            "execution can run past the last instruction; end with halt (or an unconditional transfer)",
        ));
    }

    // DEE-W001: unreachable instructions, one diagnostic per maximal run.
    let mut pc = 0usize;
    while pc < instrs.len() {
        if reachable[pc] {
            pc += 1;
            continue;
        }
        let start = pc;
        while pc < instrs.len() && !reachable[pc] {
            pc += 1;
        }
        diags.push(Diagnostic::at(
            Lint::UnreachableCode,
            start as u32,
            format!("{} instruction(s) unreachable from entry", pc - start),
        ));
    }

    // DEE-W007: dead stores (pure register writes never read), via liveness.
    let liveness = passes::Liveness::new(instrs);
    let live = liveness.solve(&flow);
    for (i, instr) in instrs.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        // Only pure value-producers: loads can fault and calls have side
        // effects, so a dead destination there is not the instruction's
        // only observable effect.
        let pure = matches!(
            instr,
            Instr::Alu { .. } | Instr::AluImm { .. } | Instr::Li { .. }
        );
        if !pure {
            continue;
        }
        if let Some(rd) = instr.def() {
            if !live.output[i].contains(rd.index()) {
                diags.push(Diagnostic::at(
                    Lint::DeadStore,
                    i as u32,
                    format!("value written to {rd} is never read"),
                ));
            }
        }
    }

    // DEE-E003: reachable reads with no reaching definition at all.
    let rdefs = passes::ReachingDefs::new(instrs);
    let reach = rdefs.solve(&flow);
    for (i, instr) in instrs.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        // Note: the return-reads-everything convention is for liveness
        // only; here only the registers actually encoded in the
        // instruction matter, `jr`'s target register included.
        for r in instr.uses().into_iter().flatten() {
            if !rdefs.any_def_of(&reach.input[i], r) {
                diags.push(Diagnostic::at(
                    Lint::UninitializedRegisterRead,
                    i as u32,
                    format!("{r} is read but never written on any path from entry"),
                ));
            }
        }
    }

    // DEE-E011 / DEE-E013: constant-address memory accesses out of bounds.
    let consts = passes::ConstStates::compute(instrs, &flow);
    for (i, instr) in instrs.iter().enumerate() {
        if !reachable[i] || !instr.is_mem() {
            continue;
        }
        if let Some(addr) = consts.const_address(i as u32, instr) {
            if addr < 0 || addr >= config.mem_words as i64 {
                let (lint, verb) = match instr {
                    Instr::Sw { .. } => (Lint::OobConstantStore, "store to"),
                    _ => (Lint::OobConstantLoad, "load from"),
                };
                diags.push(Diagnostic::at(
                    lint,
                    i as u32,
                    format!(
                        "{verb} constant address {addr} outside data memory of {} words",
                        config.mem_words
                    ),
                ));
            }
        }
    }

    // DEE-W010: irreducible retreating edges.
    let doms = structure::Doms::compute(&flow);
    let loops = structure::find_loops(&flow, &doms);
    for &(src, dst) in &loops.irreducible_edges {
        diags.push(Diagnostic::at(
            Lint::IrreducibleLoop,
            src,
            format!(
                "retreating edge to {dst} does not close a natural loop (multiple-entry region)"
            ),
        ));
    }

    Report::new(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::{AluOp, BranchCond, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn empty_program_is_e002() {
        let report = analyze_instrs(&[], &AnalyzeConfig::default());
        assert!(report.has(Lint::EmptyProgram));
        assert!(report.has_errors());
    }

    #[test]
    fn clean_loop_is_clean() {
        // li r1, 5 / loop: addi r1, r1, -1 / out r1 / bgt r1, r0, loop / halt
        let instrs = vec![
            Instr::Li { rd: r(1), imm: 5 },
            Instr::AluImm {
                op: AluOp::Add,
                rd: r(1),
                rs: r(1),
                imm: -1,
            },
            Instr::Out { rs: r(1) },
            Instr::Branch {
                cond: BranchCond::Gt,
                rs: r(1),
                rt: Reg::ZERO,
                target: 1,
            },
            Instr::Halt,
        ];
        let report = analyze_instrs(&instrs, &AnalyzeConfig::default());
        assert!(report.is_clean(), "unexpected: {:?}", report.diagnostics());
    }

    #[test]
    fn uninitialized_read_is_e003() {
        let instrs = vec![Instr::Out { rs: r(3) }, Instr::Halt];
        let report = analyze_instrs(&instrs, &AnalyzeConfig::default());
        assert!(report.has(Lint::UninitializedRegisterRead));
    }

    #[test]
    fn oob_store_and_load_are_errors() {
        let cfg = AnalyzeConfig { mem_words: 16 };
        let instrs = vec![
            Instr::Li { rd: r(1), imm: 20 },
            Instr::Sw {
                rs: Reg::ZERO,
                base: r(1),
                offset: 0,
            },
            Instr::Lw {
                rd: r(2),
                base: r(1),
                offset: -40,
            },
            Instr::Out { rs: r(2) },
            Instr::Halt,
        ];
        let report = analyze_instrs(&instrs, &cfg);
        assert!(report.has(Lint::OobConstantStore));
        assert!(report.has(Lint::OobConstantLoad));
    }

    #[test]
    fn dead_store_and_unreachable_are_warnings() {
        let instrs = vec![
            Instr::Li { rd: r(1), imm: 1 }, // dead: overwritten before use
            Instr::Li { rd: r(1), imm: 2 },
            Instr::Out { rs: r(1) },
            Instr::Halt,
            Instr::Nop, // unreachable
        ];
        let report = analyze_instrs(&instrs, &AnalyzeConfig::default());
        assert!(report.has(Lint::DeadStore));
        assert!(report.has(Lint::UnreachableCode));
        assert!(!report.has_errors());
    }

    #[test]
    fn missing_halt_at_end_is_w012() {
        let instrs = vec![Instr::Jump { target: 1 }, Instr::Nop];
        let report = analyze_instrs(&instrs, &AnalyzeConfig::default());
        assert!(report.has(Lint::MissingHalt));
        assert!(report.has(Lint::NoHalt));
    }

    #[test]
    fn oob_target_is_e005_and_analysis_continues() {
        let instrs = vec![Instr::Jump { target: 99 }, Instr::Halt];
        let report = analyze_instrs(&instrs, &AnalyzeConfig::default());
        assert!(report.has(Lint::JumpTargetOutOfRange));
        // pc 1 is unreachable (jump reroutes to exit), and that still gets
        // reported rather than crashing a downstream pass.
        assert!(report.has(Lint::UnreachableCode));
    }

    #[test]
    fn irreducible_region_is_w010() {
        // Two mutually-jumping blocks entered from two different sides.
        // 0: beq r1, r0, @3 ; 1: j @4 (enter A) ; 3: j @5 (enter B)
        let instrs = vec![
            Instr::Branch {
                cond: BranchCond::Eq,
                rs: r(1),
                rt: Reg::ZERO,
                target: 3,
            },
            Instr::Jump { target: 4 },
            Instr::Halt, // reached via the loop exit below
            Instr::Jump { target: 5 },
            // A: 4
            Instr::Branch {
                cond: BranchCond::Gt,
                rs: r(1),
                rt: Reg::ZERO,
                target: 5,
            },
            // B: 5 jumps back into A
            Instr::Jump { target: 4 },
        ];
        let report = analyze_instrs(&instrs, &AnalyzeConfig::default());
        assert!(
            report.has(Lint::IrreducibleLoop),
            "{:?}",
            report.diagnostics()
        );
    }
}
