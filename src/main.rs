//! `dee` — command-line front end for the Disjoint Eager Execution stack.
//!
//! ```text
//! dee run <prog.s> [--mem k=v,...]        run on the functional VM
//! dee sim <prog.s> [--model M] [--et N]   trace + ILP-model speedups
//! dee levo <prog.s> [--dee-paths N]       run on the Levo machine model
//! dee unroll <prog.s> [--factor K]        apply the §4.2 loop filter
//! dee tree [--p P] [--et N]               print the static DEE tree
//! dee trace <prog.s> -o <file> [--mem ..] capture a binary trace
//! dee replay <prog.s> <file> [--model M] [--et N]  simulate a captured trace
//! dee serve [--addr H:P] [--workers N]    run the simulation server
//! ```
//!
//! Programs are assembly text (see `dee_isa::parse`); initial memory cells
//! are set with `--mem addr=value,addr=value,...`.

use std::process::ExitCode;

use dee::ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee::isa::parse::parse_program;
use dee::isa::transform::{unroll_loops, UnrollConfig};
use dee::isa::Program;
use dee::levo::{Levo, LevoConfig};
use dee::theory::{StaticTree, TreeParams};
use dee::vm::trace_program;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dee run <prog.s> [--mem a=v,...]          run on the functional VM
  dee sim <prog.s> [--model M] [--et N] [--mem a=v,...]
  dee levo <prog.s> [--dee-paths N] [--mem a=v,...]
  dee unroll <prog.s> [--factor K]          print the unrolled program
  dee tree [--p P] [--et N]                 print the static DEE tree
  dee trace <prog.s> -o <file> [--mem ..]   capture a binary trace
  dee replay <prog.s> <file> [--model M] [--et N]
  dee serve [--addr HOST:PORT] [--workers N] [--cache-entries K] [--queue-capacity Q]
            [--read-budget-ms MS] [--breaker-threshold N] [--breaker-cooldown-ms MS]
            [--chaos-seed SEED]";

/// Parsed `--flag value` options after the positional arguments.
struct Options {
    memory: Vec<i32>,
    model: Option<String>,
    et: u32,
    dee_paths: Option<usize>,
    factor: u32,
    p: f64,
    output: Option<String>,
    addr: Option<String>,
    workers: Option<usize>,
    cache_entries: Option<usize>,
    queue_capacity: Option<usize>,
    read_budget_ms: Option<u64>,
    breaker_threshold: Option<u32>,
    breaker_cooldown_ms: Option<u64>,
    chaos_seed: Option<u64>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        memory: Vec::new(),
        model: None,
        et: 100,
        dee_paths: None,
        factor: 3,
        p: 0.9053,
        output: None,
        addr: None,
        workers: None,
        cache_entries: None,
        queue_capacity: None,
        read_budget_ms: None,
        breaker_threshold: None,
        breaker_cooldown_ms: None,
        chaos_seed: None,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--mem" => {
                for pair in value()?.split(',') {
                    let (addr, val) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("bad --mem entry `{pair}`"))?;
                    let addr: usize = addr
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad address `{addr}`"))?;
                    let val: i32 = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad value `{val}`"))?;
                    if options.memory.len() <= addr {
                        options.memory.resize(addr + 1, 0);
                    }
                    options.memory[addr] = val;
                }
            }
            "--model" => options.model = Some(value()?),
            "--et" => options.et = value()?.parse().map_err(|_| "bad --et".to_string())?,
            "--dee-paths" => {
                options.dee_paths = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --dee-paths".to_string())?,
                )
            }
            "--factor" => {
                options.factor = value()?.parse().map_err(|_| "bad --factor".to_string())?
            }
            "--p" => options.p = value()?.parse().map_err(|_| "bad --p".to_string())?,
            "-o" | "--output" => options.output = Some(value()?),
            "--addr" => options.addr = Some(value()?),
            "--workers" => {
                options.workers = Some(value()?.parse().map_err(|_| "bad --workers".to_string())?)
            }
            "--cache-entries" => {
                options.cache_entries = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --cache-entries".to_string())?,
                )
            }
            "--queue-capacity" => {
                options.queue_capacity = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --queue-capacity".to_string())?,
                )
            }
            "--read-budget-ms" => {
                options.read_budget_ms = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --read-budget-ms".to_string())?,
                )
            }
            "--breaker-threshold" => {
                options.breaker_threshold = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --breaker-threshold".to_string())?,
                )
            }
            "--breaker-cooldown-ms" => {
                options.breaker_cooldown_ms = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --breaker-cooldown-ms".to_string())?,
                )
            }
            "--chaos-seed" => {
                options.chaos_seed = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --chaos-seed".to_string())?,
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

fn load_program(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_program(&source).map_err(|e| format!("{path}: {e}"))
}

fn model_by_name(name: &str) -> Option<Model> {
    Model::all_constrained()
        .into_iter()
        .chain([Model::Oracle])
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("no command given".into());
    };
    match command.as_str() {
        "run" => {
            let path = args.get(1).ok_or("missing program path")?;
            let options = parse_options(&args[2..])?;
            let program = load_program(path)?;
            let trace = trace_program(&program, &options.memory, 1_000_000_000)
                .map_err(|e| e.to_string())?;
            println!("output: {:?}", trace.output());
            println!(
                "dynamic instructions: {}, branches: {}, mean path length: {:.2}",
                trace.len(),
                trace.num_cond_branches(),
                trace.mean_path_len()
            );
            Ok(())
        }
        "sim" => {
            let path = args.get(1).ok_or("missing program path")?;
            let options = parse_options(&args[2..])?;
            let program = load_program(path)?;
            let trace = trace_program(&program, &options.memory, 1_000_000_000)
                .map_err(|e| e.to_string())?;
            let prepared = PreparedTrace::new(&program, &trace);
            let p = prepared.accuracy();
            println!("2-bit counter accuracy: {:.1}%", p * 100.0);
            let models: Vec<Model> = match &options.model {
                Some(name) => {
                    vec![model_by_name(name).ok_or_else(|| format!("unknown model `{name}`"))?]
                }
                None => Model::all_constrained()
                    .into_iter()
                    .chain([Model::Oracle])
                    .collect(),
            };
            for model in models {
                let out = simulate(&prepared, &SimConfig::new(model, options.et).with_p(p));
                println!(
                    "{:<10} @ {:>4} paths: {:>7.2}x",
                    model.name(),
                    options.et,
                    out.speedup()
                );
            }
            Ok(())
        }
        "levo" => {
            let path = args.get(1).ok_or("missing program path")?;
            let options = parse_options(&args[2..])?;
            let program = load_program(path)?;
            let mut config = LevoConfig::default();
            if let Some(paths) = options.dee_paths {
                config.dee_paths = paths;
            }
            let report = Levo::new(config)
                .run(&program, &options.memory)
                .map_err(|e| e.to_string())?;
            println!("output: {:?}", report.output);
            println!(
                "cycles: {}, retired: {}, IPC: {:.2}, mispredicts: {} ({} DEE-covered)",
                report.cycles,
                report.retired,
                report.ipc(),
                report.mispredicts,
                report.dee_covered
            );
            Ok(())
        }
        "unroll" => {
            let path = args.get(1).ok_or("missing program path")?;
            let options = parse_options(&args[2..])?;
            let program = load_program(path)?;
            let result = unroll_loops(
                &program,
                &UnrollConfig {
                    factor: options.factor,
                    max_body: 12,
                },
            )
            .map_err(|e| e.to_string())?;
            eprintln!(
                "unrolled {} loop(s), {} -> {} instructions",
                result.unrolled.len(),
                program.len(),
                result.program.len()
            );
            print!("{}", result.program.to_listing());
            Ok(())
        }
        "tree" => {
            let options = parse_options(&args[1..])?;
            let tree = StaticTree::build(TreeParams {
                p: options.p,
                et: options.et,
            });
            println!(
                "static DEE tree for p = {}, E_T = {}:",
                options.p, options.et
            );
            println!("  main line l = {}", tree.mainline_len());
            println!("  h_DEE       = {}", tree.h_dee());
            println!("  DEE region  = {} paths", tree.dee_region_paths());
            println!("  degenerate  = {}", tree.is_single_path());
            Ok(())
        }
        "trace" => {
            let path = args.get(1).ok_or("missing program path")?;
            let options = parse_options(&args[2..])?;
            let out_path = options.output.as_deref().ok_or("missing -o <file>")?;
            let program = load_program(path)?;
            let trace = trace_program(&program, &options.memory, 1_000_000_000)
                .map_err(|e| e.to_string())?;
            let file = std::fs::File::create(out_path).map_err(|e| e.to_string())?;
            trace
                .write_to(std::io::BufWriter::new(file))
                .map_err(|e| e.to_string())?;
            println!("captured {} records to {out_path}", trace.len());
            Ok(())
        }
        "replay" => {
            let prog_path = args.get(1).ok_or("missing program path")?;
            let trace_path = args.get(2).ok_or("missing trace file")?;
            let options = parse_options(&args[3..])?;
            let program = load_program(prog_path)?;
            let file = std::fs::File::open(trace_path).map_err(|e| e.to_string())?;
            let trace = dee::vm::Trace::read_from(std::io::BufReader::new(file))
                .map_err(|e| e.to_string())?;
            println!("replaying {} records", trace.len());
            let prepared = PreparedTrace::new(&program, &trace);
            let p = prepared.accuracy();
            let models: Vec<Model> = match &options.model {
                Some(name) => {
                    vec![model_by_name(name).ok_or_else(|| format!("unknown model `{name}`"))?]
                }
                None => Model::all_constrained()
                    .into_iter()
                    .chain([Model::Oracle])
                    .collect(),
            };
            for model in models {
                let out = simulate(&prepared, &SimConfig::new(model, options.et).with_p(p));
                println!(
                    "{:<10} @ {:>4} paths: {:>7.2}x",
                    model.name(),
                    options.et,
                    out.speedup()
                );
            }
            Ok(())
        }
        "serve" => {
            let options = parse_options(&args[1..])?;
            let mut config = dee::serve::ServerConfig::default();
            if let Some(addr) = options.addr {
                config.addr = addr;
            } else {
                config.addr = "127.0.0.1:7377".to_string();
            }
            if let Some(workers) = options.workers {
                config.workers = workers;
            }
            if let Some(entries) = options.cache_entries {
                config.cache_entries = entries;
            }
            if let Some(capacity) = options.queue_capacity {
                config.queue_capacity = capacity;
            }
            if let Some(ms) = options.read_budget_ms {
                config.read_budget = std::time::Duration::from_millis(ms);
                config.write_budget = std::time::Duration::from_millis(ms);
            }
            if let Some(threshold) = options.breaker_threshold {
                config.breaker_threshold = threshold;
            }
            if let Some(ms) = options.breaker_cooldown_ms {
                config.breaker_cooldown = std::time::Duration::from_millis(ms);
            }
            if let Some(seed) = options.chaos_seed {
                // A hostile plan for resilience drills: every fault site
                // armed at low rates, fully reproducible from the seed.
                config.faults = std::sync::Arc::new(dee::serve::FaultPlan::hostile(seed));
                println!("chaos mode: hostile fault plan armed with seed {seed}");
            }
            let workers = config.workers;
            let server = dee::serve::Server::spawn(config).map_err(|e| e.to_string())?;
            println!(
                "dee-serve listening on http://{} ({workers} workers); endpoints: \
                 POST /simulate /tree /levo /batch, GET /healthz /metrics; Ctrl-C to stop",
                server.addr()
            );
            dee::serve::signal::install();
            while !dee::serve::signal::interrupted() {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            println!("shutting down (draining in-flight requests)...");
            server.shutdown();
            println!("bye");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn options_parse_memory_pairs() {
        let options = parse_options(&strings(&["--mem", "0=5,3=-7", "--et", "64"])).unwrap();
        assert_eq!(options.memory, vec![5, 0, 0, -7]);
        assert_eq!(options.et, 64);
    }

    #[test]
    fn options_reject_bad_memory() {
        assert!(parse_options(&strings(&["--mem", "x=1"])).is_err());
        assert!(parse_options(&strings(&["--mem", "5"])).is_err());
        assert!(parse_options(&strings(&["--et"])).is_err());
        assert!(parse_options(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn options_parse_robustness_flags() {
        let options = parse_options(&strings(&[
            "--read-budget-ms",
            "2500",
            "--breaker-threshold",
            "7",
            "--breaker-cooldown-ms",
            "400",
            "--chaos-seed",
            "12345",
        ]))
        .unwrap();
        assert_eq!(options.read_budget_ms, Some(2500));
        assert_eq!(options.breaker_threshold, Some(7));
        assert_eq!(options.breaker_cooldown_ms, Some(400));
        assert_eq!(options.chaos_seed, Some(12345));
        assert!(parse_options(&strings(&["--chaos-seed", "abc"])).is_err());
        assert!(parse_options(&strings(&["--breaker-threshold"])).is_err());
    }

    #[test]
    fn model_names_resolve_case_insensitively() {
        assert_eq!(model_by_name("dee-cd-mf"), Some(Model::DeeCdMf));
        assert_eq!(model_by_name("SP"), Some(Model::Sp));
        assert_eq!(model_by_name("oracle"), Some(Model::Oracle));
        assert_eq!(model_by_name("warp"), None);
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn tree_command_runs() {
        run(&strings(&["tree", "--p", "0.9", "--et", "34"])).unwrap();
    }

    #[test]
    fn end_to_end_through_temp_files() {
        let dir = std::env::temp_dir().join("dee-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let prog = dir.join("p.s");
        let trace = dir.join("p.trace");
        std::fs::write(&prog, "li r1, 3\nout r1\nhalt\n").unwrap();
        let prog_s = prog.to_string_lossy().to_string();
        let trace_s = trace.to_string_lossy().to_string();
        run(&strings(&["run", &prog_s])).unwrap();
        run(&strings(&["sim", &prog_s, "--model", "sp", "--et", "8"])).unwrap();
        run(&strings(&["levo", &prog_s])).unwrap();
        run(&strings(&["unroll", &prog_s])).unwrap();
        run(&strings(&["trace", &prog_s, "-o", &trace_s])).unwrap();
        run(&strings(&[
            "replay", &prog_s, &trace_s, "--model", "oracle",
        ]))
        .unwrap();
    }
}
