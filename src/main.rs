//! `dee` — command-line front end for the Disjoint Eager Execution stack.
//!
//! ```text
//! dee run <prog.s> [--mem k=v,...]        run on the functional VM
//! dee sim <prog.s> [--model M] [--et N]   trace + ILP-model speedups
//! dee levo <prog.s> [--dee-paths N]       run on the Levo machine model
//! dee unroll <prog.s> [--factor K]        apply the §4.2 loop filter
//! dee tree [--p P] [--et N]               print the static DEE tree
//! dee gen <spec|default> [--seed N] [-o F] generate a seeded program
//! dee gen sweep [--et N] [--seed N]       preview speedup vs the pred knob
//! dee trace <prog.s> -o <file> [--mem ..] capture a binary trace
//! dee trace record <workload> --store DIR [--scale S] [--engine E]
//!                  [--checkpoint-stride N]  publish an artifact (+ snapshots)
//! dee trace info <file.dtrc>              container header/footer summary
//! dee trace verify <file.dtrc>            full checksum + layout check
//! dee trace ls --store DIR                list published artifacts
//! dee trace gc --store DIR                sweep tmp/ + quarantine/
//! dee snap ls --store DIR                 list published snapshots
//! dee snap info <file.dsnp>               snapshot header summary
//! dee snap verify <file.dsnp>             framing + layout check
//! dee replay <prog.s> <file> [--model M] [--et N]  simulate a captured trace
//! dee serve [--addr H:P] [--workers N] [--store DIR]  run the simulation server
//! dee gateway --peers H:P,H:P,... [--replication R]   front a cluster of nodes
//! dee cluster [--nodes N] [--replication R] [--store DIR]  local cluster launcher
//! ```
//!
//! Programs are assembly text (see `dee_isa::parse`); initial memory cells
//! are set with `--mem addr=value,addr=value,...`.

use std::process::ExitCode;

use dee::ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee::isa::parse::parse_program;
use dee::isa::transform::{unroll_loops, UnrollConfig};
use dee::isa::Program;
use dee::levo::{Levo, LevoConfig};
use dee::theory::{StaticTree, TreeParams};
use dee::vm::trace_program;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dee run <prog.s> [--mem a=v,...]          run on the functional VM
  dee analyze <prog.s|workload> [--scale S] [--json] [--deny warnings]
                                            static lints + branch census
  dee sim <prog.s> [--model M] [--et N] [--mem a=v,...]
  dee levo <prog.s> [--dee-paths N] [--mem a=v,...]
  dee unroll <prog.s> [--factor K]          print the unrolled program
  dee tree [--p P] [--et N]                 print the static DEE tree
  dee gen <spec|default> [--seed N] [-o FILE]
                                            generate a seeded program
                                            (knobs: pred spread depth calls
                                             jr alias blocks iters)
  dee gen sweep [--et N] [--seed N]         preview speedup vs the pred knob
  dee trace <prog.s> -o <file> [--mem ..]   capture a binary trace
  dee trace record <workload> --store DIR [--scale tiny|small|medium|large]
            [--engine decoded|interp] [--checkpoint-stride N]
  dee trace info <file.dtrc>                container header/footer summary
  dee trace verify <file.dtrc>              full checksum + layout check
  dee trace ls --store DIR                  list published artifacts
  dee trace gc --store DIR                  sweep tmp/ + quarantine/
  dee snap ls --store DIR                   list published snapshots
  dee snap info <file.dsnp>                 snapshot header summary
  dee snap verify <file.dsnp>               framing + layout check
  dee replay <prog.s> <file> [--model M] [--et N]
  dee serve [--addr HOST:PORT] [--workers N] [--cache-entries K] [--queue-capacity Q]
            [--read-budget-ms MS] [--breaker-threshold N] [--breaker-cooldown-ms MS]
            [--chaos-seed SEED] [--store DIR]
  dee gateway --peers HOST:PORT,HOST:PORT,... [--addr HOST:PORT] [--replication R]
            [--workers N] [--queue-capacity Q] [--hedge-ms MS|off|auto]
            [--chaos-seed SEED]
  dee cluster [--nodes N] [--replication R] [--store DIR] [--addr HOST:PORT]
            [--hedge-ms MS|off|auto] [--chaos-seed SEED]";

/// Parsed `--flag value` options after the positional arguments.
struct Options {
    memory: Vec<i32>,
    model: Option<String>,
    et: u32,
    dee_paths: Option<usize>,
    factor: u32,
    p: f64,
    output: Option<String>,
    addr: Option<String>,
    workers: Option<usize>,
    cache_entries: Option<usize>,
    queue_capacity: Option<usize>,
    read_budget_ms: Option<u64>,
    breaker_threshold: Option<u32>,
    breaker_cooldown_ms: Option<u64>,
    chaos_seed: Option<u64>,
    store: Option<String>,
    scale: Option<String>,
    checkpoint_stride: Option<u64>,
    engine: dee::vm::Engine,
    seed: u64,
    json: bool,
    deny_warnings: bool,
    peers: Vec<String>,
    replication: Option<usize>,
    nodes: Option<usize>,
    hedge_ms: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        memory: Vec::new(),
        model: None,
        et: 100,
        dee_paths: None,
        factor: 3,
        p: 0.9053,
        output: None,
        addr: None,
        workers: None,
        cache_entries: None,
        queue_capacity: None,
        read_budget_ms: None,
        breaker_threshold: None,
        breaker_cooldown_ms: None,
        chaos_seed: None,
        store: None,
        scale: None,
        checkpoint_stride: None,
        engine: dee::vm::Engine::default(),
        seed: 1,
        json: false,
        deny_warnings: false,
        peers: Vec::new(),
        replication: None,
        nodes: None,
        hedge_ms: None,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--mem" => {
                for pair in value()?.split(',') {
                    let (addr, val) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("bad --mem entry `{pair}`"))?;
                    let addr: usize = addr
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad address `{addr}`"))?;
                    let val: i32 = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad value `{val}`"))?;
                    if options.memory.len() <= addr {
                        options.memory.resize(addr + 1, 0);
                    }
                    options.memory[addr] = val;
                }
            }
            "--model" => options.model = Some(value()?),
            "--et" => options.et = value()?.parse().map_err(|_| "bad --et".to_string())?,
            "--dee-paths" => {
                options.dee_paths = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --dee-paths".to_string())?,
                )
            }
            "--factor" => {
                options.factor = value()?.parse().map_err(|_| "bad --factor".to_string())?
            }
            "--p" => options.p = value()?.parse().map_err(|_| "bad --p".to_string())?,
            "-o" | "--output" => options.output = Some(value()?),
            "--addr" => options.addr = Some(value()?),
            "--workers" => {
                options.workers = Some(value()?.parse().map_err(|_| "bad --workers".to_string())?)
            }
            "--cache-entries" => {
                options.cache_entries = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --cache-entries".to_string())?,
                )
            }
            "--queue-capacity" => {
                options.queue_capacity = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --queue-capacity".to_string())?,
                )
            }
            "--read-budget-ms" => {
                options.read_budget_ms = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --read-budget-ms".to_string())?,
                )
            }
            "--breaker-threshold" => {
                options.breaker_threshold = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --breaker-threshold".to_string())?,
                )
            }
            "--breaker-cooldown-ms" => {
                options.breaker_cooldown_ms = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --breaker-cooldown-ms".to_string())?,
                )
            }
            "--chaos-seed" => {
                options.chaos_seed = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --chaos-seed".to_string())?,
                )
            }
            "--peers" => {
                options.peers = value()?
                    .split(',')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty())
                    .collect();
            }
            "--replication" => {
                options.replication = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --replication".to_string())?,
                )
            }
            "--nodes" => {
                options.nodes = Some(value()?.parse().map_err(|_| "bad --nodes".to_string())?)
            }
            "--hedge-ms" => options.hedge_ms = Some(value()?),
            "--store" => options.store = Some(value()?),
            "--scale" => options.scale = Some(value()?),
            "--checkpoint-stride" => {
                let stride: u64 = value()?
                    .parse()
                    .map_err(|_| "bad --checkpoint-stride".to_string())?;
                if stride == 0 {
                    return Err("--checkpoint-stride must be at least 1".to_string());
                }
                options.checkpoint_stride = Some(stride);
            }
            "--engine" => options.engine = value()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => options.seed = value()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--json" => options.json = true,
            "--deny" => match value()?.as_str() {
                "warnings" => options.deny_warnings = true,
                other => return Err(format!("`--deny` understands `warnings`, not `{other}`")),
            },
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

/// `--hedge-ms` accepts `off` (never hedge), `auto`/`0` (adaptive p90
/// budget), or a fixed millisecond count.
fn parse_hedge_ms(raw: &str) -> Result<Option<u64>, String> {
    match raw {
        "off" => Ok(None),
        "auto" => Ok(Some(0)),
        n => n
            .parse()
            .map(Some)
            .map_err(|_| "bad --hedge-ms (want `off`, `auto`, or milliseconds)".to_string()),
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_program(&source).map_err(|e| format!("{path}: {e}"))
}

fn model_by_name(name: &str) -> Option<Model> {
    Model::all_constrained()
        .into_iter()
        .chain([Model::Oracle])
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

fn workload_scale(name: &str) -> Result<dee::workloads::Scale, String> {
    use dee::workloads::Scale;
    match name {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        "large" => Ok(Scale::Large),
        other => Err(format!("unknown scale `{other}`")),
    }
}

fn workload_by_name(
    name: &str,
    scale: dee::workloads::Scale,
) -> Result<dee::workloads::Workload, String> {
    let registry = dee::workloads::WorkloadRegistry::builtin();
    registry.build(name, scale).ok_or_else(|| {
        format!(
            "unknown workload `{name}` (known: {})",
            registry.names().join(", ")
        )
    })
}

/// `gen:<spec>` names a generated workload anywhere a builtin name is
/// accepted; the seed comes from `--seed` (default 1).
fn generated_workload(spec_text: &str, seed: u64) -> Result<dee::workloads::Workload, String> {
    let spec = dee::gen::GenSpec::parse(spec_text).map_err(|e| e.to_string())?;
    Ok(dee::gen::generate(&spec, seed)
        .map_err(|e| e.to_string())?
        .workload)
}

fn open_store(options: &Options) -> Result<dee::store::Store, String> {
    let dir = options.store.as_deref().ok_or("missing --store DIR")?;
    dee::store::Store::open(dir).map_err(|e| format!("--store {dir}: {e}"))
}

/// `dee trace record <workload> --store DIR [--scale S] [--engine E]
/// [--checkpoint-stride N]` — trace a workload on the VM (validated
/// against its reference output) and publish the artifact. Idempotent:
/// an already-published key is left alone. `--engine decoded` (the
/// default) uses the pre-decoded fast path; `--engine interp` the
/// reference interpreter — the artifact bytes are identical either way.
/// With `--checkpoint-stride N`, a `DEESNAP1` snapshot is cut and
/// published every `N` records, enabling warm-start range simulation
/// and time travel on the serve tier.
fn trace_record(args: &[String]) -> Result<(), String> {
    let name = args.get(2).ok_or("missing workload name")?;
    let options = parse_options(&args[3..])?;
    let store = open_store(&options)?;
    let scale_name = options.scale.as_deref().unwrap_or("tiny");
    let scale = workload_scale(scale_name)?;
    let workload = match name.strip_prefix("gen:") {
        Some(spec_text) => generated_workload(spec_text, options.seed)?,
        None => workload_by_name(name, scale)?,
    };
    let key = dee::store::ArtifactKey::new(
        &workload.name,
        scale_name,
        &workload.program.to_listing(),
        &workload.initial_memory,
    );
    if store.contains(&key) {
        println!("already published: {}", key.filename());
    } else {
        let trace = workload.validate_with(options.engine)?;
        let path = store.put(&key, &trace).map_err(|e| e.to_string())?;
        let bytes = std::fs::metadata(&path).map_err(|e| e.to_string())?.len();
        println!(
            "published {} ({} records, {bytes} bytes)",
            key.filename(),
            trace.len()
        );
    }
    if let Some(stride) = options.checkpoint_stride {
        let cut = dee::snap::publish_checkpoints(
            &store,
            &key,
            &workload.program,
            &workload.initial_memory,
            stride,
        )?;
        println!("published {cut} snapshot(s) at stride {stride}");
    }
    Ok(())
}

/// `dee snap ls --store DIR` — list published snapshots.
fn snap_ls(args: &[String]) -> Result<(), String> {
    let options = parse_options(&args[2..])?;
    let store = open_store(&options)?;
    let entries = store.list_snapshots().map_err(|e| e.to_string())?;
    if entries.is_empty() {
        println!("(no snapshots)");
        return Ok(());
    }
    for entry in &entries {
        println!("{:>12}  {}", entry.bytes, entry.name);
    }
    println!("{} snapshot(s)", entries.len());
    Ok(())
}

/// `dee snap info <file.dsnp>` — header-level summary (no parent
/// memory image needed).
fn snap_info(args: &[String]) -> Result<(), String> {
    let path = args.get(2).ok_or("missing snapshot path")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let info = dee::snap::Snapshot::info(&bytes)?;
    println!("{path}:");
    println!(
        "  snapshot at record {} of parent {:016x} (trace format v{})",
        info.record_index, info.parent_digest, info.trace_format_version
    );
    println!(
        "  executed {}, {} output word(s), {} memory word(s), halted: {}",
        info.executed, info.output_words, info.mem_words, info.halted
    );
    println!(
        "  predictors: {}",
        if info.predictors.is_empty() {
            "(none)".to_string()
        } else {
            info.predictors.join(", ")
        }
    );
    Ok(())
}

/// `dee snap verify <file.dsnp>` — magic, trailing checksum, and full
/// section-layout check.
fn snap_verify(args: &[String]) -> Result<(), String> {
    let path = args.get(2).ok_or("missing snapshot path")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    dee::store::verify_snapshot_bytes(&bytes)?;
    let info = dee::snap::Snapshot::info(&bytes)?;
    println!(
        "{path}: ok — record {}, parent {:016x}, {} byte(s)",
        info.record_index,
        info.parent_digest,
        bytes.len()
    );
    Ok(())
}

/// `dee trace info <file.dtrc>` — footer-index summary without scanning
/// the payload.
fn trace_info(args: &[String]) -> Result<(), String> {
    let path = args.get(2).ok_or("missing artifact path")?;
    let info = dee::store::info_file(std::path::Path::new(path))?;
    let encoded = info.total_encoded();
    println!("{path}:");
    println!(
        "  container v{}, trace format v{}, chunk size {} bytes",
        info.header.container_version, info.header.trace_format_version, info.header.chunk_size
    );
    println!(
        "  {} chunk(s), {} raw bytes, {} encoded ({:.1}% of raw), {} file bytes",
        info.chunks.len(),
        info.total_raw,
        encoded,
        if info.total_raw == 0 {
            100.0
        } else {
            100.0 * encoded as f64 / info.total_raw as f64
        },
        info.file_len,
    );
    Ok(())
}

/// `dee trace verify <file.dtrc>` — stream the whole artifact through
/// every checksum and layout check.
fn trace_verify(args: &[String]) -> Result<(), String> {
    let path = args.get(2).ok_or("missing artifact path")?;
    let report = dee::store::verify_file(std::path::Path::new(path))?;
    println!(
        "{path}: ok — {} records, {} output words, output checksum {:016x}",
        report.records, report.output_words, report.output_checksum
    );
    Ok(())
}

/// `dee trace ls --store DIR` — list published artifacts.
fn trace_ls(args: &[String]) -> Result<(), String> {
    let options = parse_options(&args[2..])?;
    let store = open_store(&options)?;
    let entries = store.list().map_err(|e| e.to_string())?;
    if entries.is_empty() {
        println!("(no artifacts)");
        return Ok(());
    }
    for entry in &entries {
        println!("{:>12}  {}", entry.bytes, entry.name);
    }
    println!("{} artifact(s)", entries.len());
    Ok(())
}

/// `dee trace gc --store DIR` — sweep in-flight orphans and quarantined
/// files.
fn trace_gc(args: &[String]) -> Result<(), String> {
    let options = parse_options(&args[2..])?;
    let store = open_store(&options)?;
    let report = store.gc().map_err(|e| e.to_string())?;
    println!(
        "removed {} tmp orphan(s), {} quarantined file(s)",
        report.tmp_removed, report.quarantine_removed
    );
    Ok(())
}

/// `dee gen <spec|default> [--seed N] [-o FILE]` — generate a seeded
/// program and emit its listing. The listing leads with the `# dee-gen v1`
/// spec+seed header, so the file alone regenerates the program (and its
/// input memory) bit-for-bit; stdout stays pure listing so it can be
/// piped, with the summary on stderr.
fn gen_program(args: &[String]) -> Result<(), String> {
    let spec_text = args
        .get(1)
        .ok_or("missing gen spec (try `dee gen default`)")?;
    let options = parse_options(&args[2..])?;
    let spec = dee::gen::GenSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let generated = dee::gen::generate(&spec, options.seed).map_err(|e| e.to_string())?;
    let listing = generated.listing();
    let prepared = PreparedTrace::new(&generated.workload.program, &generated.trace);
    let summary = format!(
        "{}: {} instruction(s), {} dynamic, {} branch(es), 2-bit accuracy {:.1}%",
        generated.name(),
        generated.workload.program.len(),
        generated.trace.len(),
        generated.trace.num_cond_branches(),
        prepared.accuracy() * 100.0
    );
    match options.output.as_deref() {
        Some(path) => {
            std::fs::write(path, &listing).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
            println!("{summary}");
        }
        None => {
            print!("{listing}");
            eprintln!("{summary}");
        }
    }
    Ok(())
}

/// `dee gen sweep [--et N] [--seed N]` — a quick serial preview of the
/// workload-space axis: one small generated program per `pred` step,
/// measured 2-bit accuracy, and SP / DEE-CD-MF / oracle speedups. The
/// full seeded grid (with `--jobs` and the committed golden CSV) is the
/// `genspace` bench binary.
fn gen_sweep(args: &[String]) -> Result<(), String> {
    let options = parse_options(&args[2..])?;
    println!(
        "pred-knob preview: seed {}, E_T = {} (full grid: `genspace` in crates/bench)",
        options.seed, options.et
    );
    println!(
        "{:>5} {:>9} {:>8} {:>10} {:>8} {:>8}",
        "pred", "accuracy", "SP", "DEE-CD-MF", "Oracle", "DEE/SP"
    );
    for pred in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let spec = dee::gen::GenSpec {
            pred,
            spread: 0.02,
            depth: 2,
            calls: 0.2,
            jr: 0.1,
            alias: 0.5,
            blocks: 12,
            iters: 48,
        };
        let generated = dee::gen::generate(&spec, options.seed).map_err(|e| e.to_string())?;
        let prepared = PreparedTrace::new(&generated.workload.program, &generated.trace);
        let p = prepared.accuracy();
        let shape_p = p.clamp(0.5, 0.9999);
        let speedup = |model| {
            simulate(
                &prepared,
                &SimConfig::new(model, options.et).with_p(shape_p),
            )
            .speedup()
        };
        let (sp, dee, oracle) = (
            speedup(Model::Sp),
            speedup(Model::DeeCdMf),
            speedup(Model::Oracle),
        );
        println!(
            "{pred:>5} {:>8.1}% {sp:>8.2} {dee:>10.2} {oracle:>8.2} {:>8.2}",
            p * 100.0,
            dee / sp
        );
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("no command given".into());
    };
    match command.as_str() {
        "run" => {
            let path = args.get(1).ok_or("missing program path")?;
            let options = parse_options(&args[2..])?;
            let program = load_program(path)?;
            let trace = trace_program(&program, &options.memory, 1_000_000_000)
                .map_err(|e| e.to_string())?;
            println!("output: {:?}", trace.output());
            println!(
                "dynamic instructions: {}, branches: {}, mean path length: {:.2}",
                trace.len(),
                trace.num_cond_branches(),
                trace.mean_path_len()
            );
            Ok(())
        }
        "analyze" => {
            let target = args.get(1).ok_or("missing program path or workload name")?;
            let options = parse_options(&args[2..])?;
            // A registered workload name analyses the built program at
            // `--scale` (default tiny); `gen:<spec>` analyses a generated
            // program at `--seed`; anything else is an assembly path.
            let program = if let Some(spec_text) = target.strip_prefix("gen:") {
                generated_workload(spec_text, options.seed)?.program
            } else if dee::workloads::WorkloadRegistry::builtin().contains(target) {
                let scale = workload_scale(options.scale.as_deref().unwrap_or("tiny"))?;
                workload_by_name(target, scale)?.program
            } else {
                load_program(target)?
            };
            let report = dee::analyze::analyze(&program);
            if options.json {
                println!("{}", report.render_json(target));
            } else {
                print!("{}", report.render_text(target));
                let census = dee::analyze::BranchCensus::build(&program);
                println!(
                    "{target}: {} instruction(s), {} conditional branch(es) \
                     ({} loop-back), mean static path {:.2}",
                    program.len(),
                    census.num_branches(),
                    census.num_loop_back(),
                    census.mean_static_path_len()
                );
            }
            let gate_failed = report.has_errors() || (options.deny_warnings && !report.is_clean());
            if gate_failed {
                // Diagnostics have been printed; the nonzero exit is the
                // verdict, and the usage text would only bury it.
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                std::process::exit(1);
            }
            Ok(())
        }
        "sim" => {
            let path = args.get(1).ok_or("missing program path")?;
            let options = parse_options(&args[2..])?;
            let program = load_program(path)?;
            let trace = trace_program(&program, &options.memory, 1_000_000_000)
                .map_err(|e| e.to_string())?;
            let prepared = PreparedTrace::new(&program, &trace);
            let p = prepared.accuracy();
            println!("2-bit counter accuracy: {:.1}%", p * 100.0);
            let models: Vec<Model> = match &options.model {
                Some(name) => {
                    vec![model_by_name(name).ok_or_else(|| format!("unknown model `{name}`"))?]
                }
                None => Model::all_constrained()
                    .into_iter()
                    .chain([Model::Oracle])
                    .collect(),
            };
            for model in models {
                let out = simulate(&prepared, &SimConfig::new(model, options.et).with_p(p));
                println!(
                    "{:<10} @ {:>4} paths: {:>7.2}x",
                    model.name(),
                    options.et,
                    out.speedup()
                );
            }
            Ok(())
        }
        "levo" => {
            let path = args.get(1).ok_or("missing program path")?;
            let options = parse_options(&args[2..])?;
            let program = load_program(path)?;
            let mut config = LevoConfig::default();
            if let Some(paths) = options.dee_paths {
                config.dee_paths = paths;
            }
            let report = Levo::new(config)
                .run(&program, &options.memory)
                .map_err(|e| e.to_string())?;
            println!("output: {:?}", report.output);
            println!(
                "cycles: {}, retired: {}, IPC: {:.2}, mispredicts: {} ({} DEE-covered)",
                report.cycles,
                report.retired,
                report.ipc(),
                report.mispredicts,
                report.dee_covered
            );
            Ok(())
        }
        "unroll" => {
            let path = args.get(1).ok_or("missing program path")?;
            let options = parse_options(&args[2..])?;
            let program = load_program(path)?;
            let result = unroll_loops(
                &program,
                &UnrollConfig {
                    factor: options.factor,
                    max_body: 12,
                },
            )
            .map_err(|e| e.to_string())?;
            eprintln!(
                "unrolled {} loop(s), {} -> {} instructions",
                result.unrolled.len(),
                program.len(),
                result.program.len()
            );
            print!("{}", result.program.to_listing());
            Ok(())
        }
        "tree" => {
            let options = parse_options(&args[1..])?;
            let tree = StaticTree::build(TreeParams {
                p: options.p,
                et: options.et,
            });
            println!(
                "static DEE tree for p = {}, E_T = {}:",
                options.p, options.et
            );
            println!("  main line l = {}", tree.mainline_len());
            println!("  h_DEE       = {}", tree.h_dee());
            println!("  DEE region  = {} paths", tree.dee_region_paths());
            println!("  degenerate  = {}", tree.is_single_path());
            Ok(())
        }
        "gen" => match args.get(1).map(String::as_str) {
            Some("sweep") => gen_sweep(args),
            Some(_) => gen_program(args),
            None => Err("missing gen spec (try `dee gen default`)".into()),
        },
        "snap" => match args.get(1).map(String::as_str) {
            Some("ls") => snap_ls(args),
            Some("info") => snap_info(args),
            Some("verify") => snap_verify(args),
            _ => Err("snap subcommands: ls | info | verify".into()),
        },
        "trace" => match args.get(1).map(String::as_str) {
            Some("record") => trace_record(args),
            Some("info") => trace_info(args),
            Some("verify") => trace_verify(args),
            Some("ls") => trace_ls(args),
            Some("gc") => trace_gc(args),
            // Legacy form: `dee trace <prog.s> -o <file>` captures a
            // bare DEETRC1 stream (no container).
            Some(path) => {
                let options = parse_options(&args[2..])?;
                let out_path = options.output.as_deref().ok_or("missing -o <file>")?;
                let program = load_program(path)?;
                let trace = trace_program(&program, &options.memory, 1_000_000_000)
                    .map_err(|e| e.to_string())?;
                let file = std::fs::File::create(out_path).map_err(|e| e.to_string())?;
                trace
                    .write_to(std::io::BufWriter::new(file))
                    .map_err(|e| e.to_string())?;
                println!("captured {} records to {out_path}", trace.len());
                Ok(())
            }
            None => Err("missing program path or trace subcommand".into()),
        },
        "replay" => {
            let prog_path = args.get(1).ok_or("missing program path")?;
            let trace_path = args.get(2).ok_or("missing trace file")?;
            let options = parse_options(&args[3..])?;
            let program = load_program(prog_path)?;
            let file = std::fs::File::open(trace_path).map_err(|e| e.to_string())?;
            let trace = dee::vm::Trace::read_from(std::io::BufReader::new(file))
                .map_err(|e| e.to_string())?;
            println!("replaying {} records", trace.len());
            let prepared = PreparedTrace::new(&program, &trace);
            let p = prepared.accuracy();
            let models: Vec<Model> = match &options.model {
                Some(name) => {
                    vec![model_by_name(name).ok_or_else(|| format!("unknown model `{name}`"))?]
                }
                None => Model::all_constrained()
                    .into_iter()
                    .chain([Model::Oracle])
                    .collect(),
            };
            for model in models {
                let out = simulate(&prepared, &SimConfig::new(model, options.et).with_p(p));
                println!(
                    "{:<10} @ {:>4} paths: {:>7.2}x",
                    model.name(),
                    options.et,
                    out.speedup()
                );
            }
            Ok(())
        }
        "serve" => {
            let options = parse_options(&args[1..])?;
            let mut config = dee::serve::ServerConfig::default();
            if let Some(addr) = options.addr {
                config.addr = addr;
            } else {
                config.addr = "127.0.0.1:7377".to_string();
            }
            if let Some(workers) = options.workers {
                config.workers = workers;
            }
            if let Some(entries) = options.cache_entries {
                config.cache_entries = entries;
            }
            if let Some(capacity) = options.queue_capacity {
                config.queue_capacity = capacity;
            }
            if let Some(ms) = options.read_budget_ms {
                config.read_budget = std::time::Duration::from_millis(ms);
                config.write_budget = std::time::Duration::from_millis(ms);
            }
            if let Some(threshold) = options.breaker_threshold {
                config.breaker_threshold = threshold;
            }
            if let Some(ms) = options.breaker_cooldown_ms {
                config.breaker_cooldown = std::time::Duration::from_millis(ms);
            }
            if let Some(dir) = &options.store {
                config.store_dir = Some(dir.into());
                println!("trace-artifact store: {dir} (disk cache tier enabled)");
            }
            if let Some(seed) = options.chaos_seed {
                // A hostile plan for resilience drills: every fault site
                // armed at low rates, fully reproducible from the seed.
                config.faults = std::sync::Arc::new(dee::serve::FaultPlan::hostile(seed));
                println!("chaos mode: hostile fault plan armed with seed {seed}");
            }
            let workers = config.workers;
            let server = dee::serve::Server::spawn(config).map_err(|e| e.to_string())?;
            println!(
                "dee-serve listening on http://{} ({workers} workers); endpoints: \
                 POST /simulate /simulate_range /tree /levo /batch, \
                 GET /debug/at /healthz /metrics; Ctrl-C to stop",
                server.addr()
            );
            dee::serve::signal::install();
            while !dee::serve::signal::interrupted() {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            println!("shutting down (draining in-flight requests)...");
            server.shutdown();
            println!("bye");
            Ok(())
        }
        "gateway" => {
            let options = parse_options(&args[1..])?;
            if options.peers.is_empty() {
                return Err("gateway needs --peers HOST:PORT,HOST:PORT,...".into());
            }
            let mut config = dee::cluster::GatewayConfig {
                addr: options.addr.unwrap_or_else(|| "127.0.0.1:7378".to_string()),
                peers: options.peers,
                ..dee::cluster::GatewayConfig::default()
            };
            if let Some(r) = options.replication {
                config.replication = r;
            }
            if let Some(workers) = options.workers {
                config.workers = workers;
            }
            if let Some(capacity) = options.queue_capacity {
                config.queue_capacity = capacity;
            }
            if let Some(raw) = &options.hedge_ms {
                config.hedge_ms = parse_hedge_ms(raw)?;
            }
            if let Some(seed) = options.chaos_seed {
                config.faults = std::sync::Arc::new(dee::serve::FaultPlan::cluster_hostile(seed));
                println!("chaos mode: cluster-hostile fault plan armed with seed {seed}");
            }
            let peers = config.peers.len();
            let replication = config.replication;
            let gateway = dee::cluster::Gateway::spawn(config).map_err(|e| e.to_string())?;
            println!(
                "dee-gateway listening on http://{} fronting {peers} peer(s), \
                 replication {replication}; Ctrl-C to stop",
                gateway.addr()
            );
            dee::serve::signal::install();
            while !dee::serve::signal::interrupted() {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            println!("shutting down (draining forwarded requests)...");
            gateway.shutdown();
            println!("bye");
            Ok(())
        }
        "cluster" => {
            let options = parse_options(&args[1..])?;
            let mut config = dee::cluster::ClusterConfig::default();
            if let Some(n) = options.nodes {
                config.nodes = n;
            }
            if let Some(r) = options.replication {
                config.replication = r;
            }
            if let Some(dir) = &options.store {
                config.store_root = dir.into();
            }
            if let Some(addr) = options.addr {
                config.gateway_addr = addr;
            } else {
                config.gateway_addr = "127.0.0.1:7378".to_string();
            }
            if let Some(raw) = &options.hedge_ms {
                config.hedge_ms = parse_hedge_ms(raw)?;
            }
            if let Some(seed) = options.chaos_seed {
                config.faults = std::sync::Arc::new(dee::serve::FaultPlan::cluster_hostile(seed));
                println!("chaos mode: cluster-hostile fault plan armed with seed {seed}");
            }
            println!(
                "launching {} node(s), replication {}, stores under {}",
                config.nodes,
                config.replication,
                config.store_root.display()
            );
            let cluster = dee::cluster::LocalCluster::launch(config).map_err(|e| e.to_string())?;
            for i in 0..cluster.len() {
                println!("  node-{i} listening on http://{}", cluster.node_addr(i));
            }
            println!(
                "dee-gateway listening on http://{}; Ctrl-C to stop",
                cluster.gateway_addr()
            );
            dee::serve::signal::install();
            while !dee::serve::signal::interrupted() {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            println!("shutting down (sync drain, then gateway, then nodes)...");
            cluster.shutdown();
            println!("bye");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn options_parse_memory_pairs() {
        let options = parse_options(&strings(&["--mem", "0=5,3=-7", "--et", "64"])).unwrap();
        assert_eq!(options.memory, vec![5, 0, 0, -7]);
        assert_eq!(options.et, 64);
    }

    #[test]
    fn options_reject_bad_memory() {
        assert!(parse_options(&strings(&["--mem", "x=1"])).is_err());
        assert!(parse_options(&strings(&["--mem", "5"])).is_err());
        assert!(parse_options(&strings(&["--et"])).is_err());
        assert!(parse_options(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn options_parse_robustness_flags() {
        let options = parse_options(&strings(&[
            "--read-budget-ms",
            "2500",
            "--breaker-threshold",
            "7",
            "--breaker-cooldown-ms",
            "400",
            "--chaos-seed",
            "12345",
        ]))
        .unwrap();
        assert_eq!(options.read_budget_ms, Some(2500));
        assert_eq!(options.breaker_threshold, Some(7));
        assert_eq!(options.breaker_cooldown_ms, Some(400));
        assert_eq!(options.chaos_seed, Some(12345));
        assert!(parse_options(&strings(&["--chaos-seed", "abc"])).is_err());
        assert!(parse_options(&strings(&["--breaker-threshold"])).is_err());
    }

    #[test]
    fn options_parse_cluster_flags() {
        let options = parse_options(&strings(&[
            "--peers",
            "127.0.0.1:7377, 127.0.0.1:7380,",
            "--replication",
            "3",
            "--nodes",
            "5",
            "--hedge-ms",
            "25",
        ]))
        .unwrap();
        assert_eq!(options.peers, vec!["127.0.0.1:7377", "127.0.0.1:7380"]);
        assert_eq!(options.replication, Some(3));
        assert_eq!(options.nodes, Some(5));
        assert_eq!(options.hedge_ms.as_deref(), Some("25"));
        assert!(parse_options(&strings(&["--replication", "two"])).is_err());
        assert!(parse_options(&strings(&["--nodes"])).is_err());
    }

    #[test]
    fn hedge_budget_understands_off_auto_and_fixed() {
        assert_eq!(parse_hedge_ms("off").unwrap(), None);
        assert_eq!(parse_hedge_ms("auto").unwrap(), Some(0));
        assert_eq!(parse_hedge_ms("0").unwrap(), Some(0));
        assert_eq!(parse_hedge_ms("40").unwrap(), Some(40));
        assert!(parse_hedge_ms("fast").is_err());
        assert!(parse_hedge_ms("-1").is_err());
    }

    #[test]
    fn gateway_without_peers_is_an_error() {
        assert!(run(&strings(&["gateway"])).is_err());
        assert!(run(&strings(&["gateway", "--peers", ","])).is_err());
    }

    #[test]
    fn model_names_resolve_case_insensitively() {
        assert_eq!(model_by_name("dee-cd-mf"), Some(Model::DeeCdMf));
        assert_eq!(model_by_name("SP"), Some(Model::Sp));
        assert_eq!(model_by_name("oracle"), Some(Model::Oracle));
        assert_eq!(model_by_name("warp"), None);
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn tree_command_runs() {
        run(&strings(&["tree", "--p", "0.9", "--et", "34"])).unwrap();
    }

    #[test]
    fn end_to_end_through_temp_files() {
        let dir = std::env::temp_dir().join("dee-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let prog = dir.join("p.s");
        let trace = dir.join("p.trace");
        std::fs::write(&prog, "li r1, 3\nout r1\nhalt\n").unwrap();
        let prog_s = prog.to_string_lossy().to_string();
        let trace_s = trace.to_string_lossy().to_string();
        run(&strings(&["run", &prog_s])).unwrap();
        run(&strings(&["sim", &prog_s, "--model", "sp", "--et", "8"])).unwrap();
        run(&strings(&["levo", &prog_s])).unwrap();
        run(&strings(&["unroll", &prog_s])).unwrap();
        run(&strings(&["trace", &prog_s, "-o", &trace_s])).unwrap();
        run(&strings(&[
            "replay", &prog_s, &trace_s, "--model", "oracle",
        ]))
        .unwrap();
    }

    #[test]
    fn gen_writes_a_regenerable_listing() {
        let dir = std::env::temp_dir().join(format!("dee-cli-gen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("g.s").to_string_lossy().to_string();
        run(&strings(&[
            "gen",
            "pred=0.9,blocks=4,iters=8",
            "--seed",
            "7",
            "-o",
            &out,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let regenerated = dee::gen::from_listing(&text).unwrap();
        assert_eq!(regenerated.seed, 7);
        assert_eq!(regenerated.listing(), text);
        // The emitted listing is plain assembly: every other file-taking
        // subcommand accepts it.
        run(&strings(&["run", &out])).unwrap();
        run(&strings(&["analyze", &out, "--deny", "warnings"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_spec_names_work_anywhere_workload_names_do() {
        // analyze accepts `gen:<spec>` targets and registry names
        // (including the interpreter workload) interchangeably.
        run(&strings(&[
            "analyze",
            "gen:pred=0.95,blocks=4,iters=8",
            "--seed",
            "3",
            "--deny",
            "warnings",
        ]))
        .unwrap();
        run(&strings(&["analyze", "synacor", "--scale", "tiny"])).unwrap();
    }

    #[test]
    fn gen_rejects_bad_specs() {
        assert!(run(&strings(&["gen"])).is_err());
        assert!(run(&strings(&["gen", "pred=2"])).is_err());
        assert!(run(&strings(&["gen", "warp=1"])).is_err());
        assert!(run(&strings(&["gen", "default", "--seed", "x"])).is_err());
    }

    #[test]
    fn gen_sweep_previews_the_pred_axis() {
        run(&strings(&["gen", "sweep", "--et", "16", "--seed", "2"])).unwrap();
    }

    #[test]
    fn generated_workloads_record_into_the_store() {
        let dir = std::env::temp_dir().join(format!("dee-cli-genstore-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = dir.to_string_lossy().to_string();
        let args = strings(&[
            "trace",
            "record",
            "gen:pred=0.8,blocks=4,iters=8",
            "--store",
            &store,
            "--seed",
            "5",
        ]);
        run(&args).unwrap();
        // Same spec+seed → same key → idempotent re-record.
        run(&args).unwrap();
        let artifacts = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "dtrc"))
            .count();
        assert_eq!(artifacts, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_store_subcommands_round_trip() {
        let dir = std::env::temp_dir().join(format!("dee-cli-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = dir.to_string_lossy().to_string();
        // record publishes, and re-recording the same key is a no-op.
        run(&strings(&[
            "trace", "record", "xlisp", "--store", &store, "--scale", "tiny",
        ]))
        .unwrap();
        run(&strings(&[
            "trace", "record", "xlisp", "--store", &store, "--scale", "tiny",
        ]))
        .unwrap();
        run(&strings(&["trace", "ls", "--store", &store])).unwrap();
        let artifact = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "dtrc"))
            .expect("record published a .dtrc artifact");
        let artifact_s = artifact.to_string_lossy().to_string();
        run(&strings(&["trace", "info", &artifact_s])).unwrap();
        run(&strings(&["trace", "verify", &artifact_s])).unwrap();
        run(&strings(&["trace", "gc", "--store", &store])).unwrap();
        // A corrupted artifact fails verification with a typed error
        // rather than a panic.
        let mut bytes = std::fs::read(&artifact).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&artifact, bytes).unwrap();
        assert!(run(&strings(&["trace", "verify", &artifact_s])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snap_subcommands_round_trip() {
        let dir = std::env::temp_dir().join(format!("dee-cli-snap-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = dir.to_string_lossy().to_string();
        // Recording with a checkpoint stride publishes the artifact and
        // its snapshots; re-running is idempotent (snapshots are
        // deterministic, so the republished bytes are identical).
        run(&strings(&[
            "trace",
            "record",
            "compress",
            "--store",
            &store,
            "--scale",
            "tiny",
            "--checkpoint-stride",
            "2000",
        ]))
        .unwrap();
        run(&strings(&[
            "trace",
            "record",
            "compress",
            "--store",
            &store,
            "--scale",
            "tiny",
            "--checkpoint-stride",
            "2000",
        ]))
        .unwrap();
        run(&strings(&["snap", "ls", "--store", &store])).unwrap();
        let snapshots: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "dsnp"))
            .collect();
        // compress/tiny runs 8417 records, so stride 2000 cuts
        // snapshots at 2000, 4000, 6000, and 8000.
        assert_eq!(snapshots.len(), 4);
        let snapshot_s = snapshots[0].to_string_lossy().to_string();
        run(&strings(&["snap", "info", &snapshot_s])).unwrap();
        run(&strings(&["snap", "verify", &snapshot_s])).unwrap();
        // A corrupted snapshot fails verification with a typed error.
        let mut bytes = std::fs::read(&snapshots[0]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snapshots[0], bytes).unwrap();
        assert!(run(&strings(&["snap", "verify", &snapshot_s])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snap_subcommands_reject_bad_arguments() {
        assert!(run(&strings(&["snap"])).is_err());
        assert!(run(&strings(&["snap", "bogus"])).is_err());
        assert!(run(&strings(&["snap", "info"])).is_err());
        assert!(run(&strings(&["snap", "verify", "/tmp/dee-cli-missing.dsnp"])).is_err());
        assert!(parse_options(&strings(&["--checkpoint-stride", "0"])).is_err());
        assert!(parse_options(&strings(&["--checkpoint-stride", "abc"])).is_err());
    }

    #[test]
    fn trace_subcommands_reject_bad_arguments() {
        assert!(run(&strings(&["trace"])).is_err());
        assert!(run(&strings(&["trace", "record", "xlisp"])).is_err());
        assert!(run(&strings(&[
            "trace",
            "record",
            "warp9",
            "--store",
            "/tmp/dee-cli-bogus"
        ]))
        .is_err());
        assert!(run(&strings(&[
            "trace",
            "record",
            "xlisp",
            "--store",
            "/tmp/dee-cli-bogus2",
            "--scale",
            "huge"
        ]))
        .is_err());
        assert!(run(&strings(&["trace", "info", "/nonexistent/x.dtrc"])).is_err());
        assert!(run(&strings(&["trace", "ls"])).is_err());
        std::fs::remove_dir_all("/tmp/dee-cli-bogus").ok();
        std::fs::remove_dir_all("/tmp/dee-cli-bogus2").ok();
    }
}
