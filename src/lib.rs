//! Disjoint Eager Execution (DEE) — a reproduction of Uht & Sindagi,
//! "Disjoint Eager Execution: An Optimal Form of Speculative Execution",
//! MICRO-28, 1995.
//!
//! This facade crate re-exports every subsystem of the reproduction:
//!
//! * [`isa`] — the toy MIPS-R3000-like instruction set, assembler, and
//!   control-dependence analyses;
//! * [`vm`] — the functional interpreter and dynamic trace capture;
//! * [`workloads`] — the benchmark registry: five SPECint92-like
//!   programs, the `synacor` bytecode-interpreter workload, and any
//!   generated program registered at runtime;
//! * [`gen`] — the seeded workload-space generator: deterministic toy-ISA
//!   programs from an eight-knob [`gen::GenSpec`], each carrying its
//!   spec+seed header so every artifact is regenerable (`dee gen`);
//! * [`predict`] — branch predictors (2-bit counter, PAp, gshare, static);
//! * [`theory`] — DEE theory: optimal resource assignment and the static
//!   tree heuristic (`dee-core`);
//! * [`ilpsim`] — the resource-constrained trace-driven ILP limit simulator
//!   behind every figure of the paper's evaluation;
//! * [`levo`] — the Levo/CONDEL-2 static-instruction-window machine model;
//! * [`mem`] — the data-cache model (the paper's future-work memory
//!   system), pluggable into the ILP simulator via per-access latencies;
//! * [`serve`] — the resident simulation server: a worker pool and a
//!   sharded prepared-trace cache behind a dependency-free HTTP/JSON API
//!   (`dee serve`);
//! * [`store`] — the persistent, checksummed trace-artifact store:
//!   record-once/replay-many containers with streaming replay, behind
//!   the bench binaries' `--store`, `dee serve --store`, and the
//!   `dee trace record|info|verify|ls|gc` subcommands;
//! * [`snap`] — serializable `DEESNAP1` VM snapshots: complete machine +
//!   predictor state at a record index of a published trace, enabling
//!   warm-start range simulation and time travel (`dee snap ls|info|verify`,
//!   `dee trace record --checkpoint-stride`, `POST /simulate_range`);
//! * [`analyze`] — static analysis over toy-ISA programs: CFG dataflow
//!   (liveness, reaching definitions, constant bounds), typed `DEE-*`
//!   lints, and the static branch census that cross-checks dynamic traces
//!   (`dee analyze`);
//! * [`cluster`] — the sharded, self-healing multi-node serve tier: a
//!   seeded consistent-hash ring, a hedging/retry-budgeted gateway,
//!   checksum-based anti-entropy replication, and the `LocalCluster`
//!   launcher (`dee gateway`, `dee cluster`).
//!
//! # Quickstart
//!
//! ```
//! use dee::prelude::*;
//!
//! // Build a workload, trace it, and measure DEE-CD-MF speedup.
//! let workload = dee::workloads::xlisp::build(Scale::Tiny);
//! let trace = workload.capture_trace().expect("workload runs to completion");
//! let prepared = PreparedTrace::new(&workload.program, &trace);
//! let outcome = simulate(&prepared, &SimConfig::new(Model::DeeCdMf, 32));
//! assert!(outcome.speedup() > 1.0);
//! ```

#![forbid(unsafe_code)]

pub use dee_analyze as analyze;
pub use dee_cluster as cluster;
pub use dee_core as theory;
pub use dee_gen as gen;
pub use dee_ilpsim as ilpsim;
pub use dee_isa as isa;
pub use dee_levo as levo;
pub use dee_mem as mem;
pub use dee_predict as predict;
pub use dee_serve as serve;
pub use dee_snap as snap;
pub use dee_store as store;
pub use dee_vm as vm;
pub use dee_workloads as workloads;

/// Convenient re-exports of the most common types.
pub mod prelude {
    pub use dee_cluster::{ClusterConfig, Gateway, GatewayConfig, HashRing, LocalCluster};
    pub use dee_core::{StaticTree, TreeParams};
    pub use dee_gen::{generate, GenSpec};
    pub use dee_ilpsim::{simulate, LatencyModel, Model, PreparedTrace, SimConfig, SimOutcome};
    pub use dee_isa::{Assembler, Instr, Program, Reg};
    pub use dee_levo::{Levo, LevoConfig, LevoReport, PredictorKind};
    pub use dee_mem::{CacheConfig, MemoryHierarchy};
    pub use dee_predict::{BranchPredictor, TwoBitCounter};
    pub use dee_serve::{Server, ServerConfig};
    pub use dee_vm::{Trace, TraceRecord};
    pub use dee_workloads::{Scale, Workload, WorkloadRegistry};
}
