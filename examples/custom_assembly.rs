//! Write a program in assembly *text*, parse it, and put it through the
//! whole stack: functional VM, ILP models, the loop-unrolling filter, and
//! the Levo machine.
//!
//! Run with: `cargo run --release --example custom_assembly`

use dee::ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee::isa::parse::parse_program;
use dee::isa::transform::{unroll_loops, UnrollConfig};
use dee::prelude::*;

const SOURCE: &str = r"
# dot product with a data-dependent saturation
        li   r1, 0          # i
        li   r2, 64         # n
        li   r3, 0          # acc
        li   r10, 100       # a[] base
        li   r11, 200       # b[] base
loop:   add  r4, r10, r1
        lw   r5, 0(r4)
        add  r4, r11, r1
        lw   r6, 0(r4)
        mul  r7, r5, r6
        add  r3, r3, r7
        slti r8, r3, 10000  # saturate rarely
        bne  r8, r0, next
        li   r3, 10000
next:   addi r1, r1, 1
        blt  r1, r2, loop
        out  r3
        halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SOURCE)?;
    println!(
        "parsed {} instructions:\n{}",
        program.len(),
        program.to_listing()
    );

    // Input vectors at word addresses 100.. and 200..
    let mut memory = vec![0i32; 300];
    for i in 0..64 {
        memory[100 + i] = (i as i32 % 7) - 3;
        memory[200 + i] = (i as i32 % 5) + 1;
    }

    let trace = dee::vm::trace_program(&program, &memory, 100_000)?;
    println!(
        "VM result: {:?} over {} dynamic instructions\n",
        trace.output(),
        trace.len()
    );

    let prepared = PreparedTrace::new(&program, &trace);
    for model in [Model::Sp, Model::DeeCdMf, Model::Oracle] {
        let out = simulate(
            &prepared,
            &SimConfig::new(model, 64).with_p(prepared.accuracy()),
        );
        println!("{:<10} {:.2}x", model.name(), out.speedup());
    }

    // The §4.2 filter, then Levo with scarce iteration columns.
    let unrolled = unroll_loops(
        &program,
        &UnrollConfig {
            factor: 3,
            max_body: 12,
        },
    )?;
    println!(
        "\nunrolled {} loop(s); program grows {} -> {} instructions",
        unrolled.unrolled.len(),
        program.len(),
        unrolled.program.len()
    );
    let config = LevoConfig {
        m: 1,
        ..LevoConfig::default()
    };
    let plain = Levo::new(config).run(&program, &memory)?;
    let rolled = Levo::new(config).run(&unrolled.program, &memory)?;
    assert_eq!(plain.output, rolled.output);
    println!(
        "Levo (m=1): {:.2} IPC plain, {:.2} IPC unrolled",
        plain.ipc(),
        rolled.ipc()
    );
    Ok(())
}
