//! Run a real workload through the Levo machine model and watch what the
//! DEE paths buy: cycles, IPC, misprediction coverage, and loop capture,
//! across the paper's three hardware configurations.
//!
//! Run with: `cargo run --release --example levo_pipeline [workload]`
//! where workload is one of cc1|compress|eqntott|espresso|xlisp
//! (default xlisp, the paper's 9-queens input at Tiny scale).

use dee::prelude::*;
use dee::workloads::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "xlisp".into());
    let workload = workloads::all_workloads(Scale::Tiny)
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| format!("unknown workload `{name}`"))?;
    println!(
        "workload: {} ({} static instructions)",
        workload.name,
        workload.program.len()
    );

    for (label, config) in [
        ("CONDEL-2 (no DEE)", LevoConfig::condel2()),
        ("Levo 3 x 1-col DEE", LevoConfig::default()),
        ("Levo 11 x 2-col DEE", LevoConfig::levo_100()),
    ] {
        let report = Levo::new(config).run(&workload.program, &workload.initial_memory)?;
        assert_eq!(
            report.output, workload.expected_output,
            "architectural results must match the reference"
        );
        println!("\n{label}:");
        println!("  cycles           {:>10}", report.cycles);
        println!("  retired          {:>10}", report.retired);
        println!("  IPC              {:>10.2}", report.ipc());
        println!("  mispredicts      {:>10}", report.mispredicts);
        println!("  DEE-covered      {:>10}", report.dee_covered);
        println!("  DEE-injected     {:>10}", report.dee_injected);
        println!("  squashed         {:>10}", report.squashed);
        if let Some(rate) = report.loop_capture_rate() {
            println!("  loop capture     {:>9.1}%", rate * 100.0);
        }
    }
    println!("\n(output validated against the functional VM in all three configurations)");
    Ok(())
}
