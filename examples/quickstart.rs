//! Quickstart: build a tiny program with the assembler, trace it on the
//! functional VM, and compare the speculative execution models on it.
//!
//! Run with: `cargo run --example quickstart`

use dee::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a small branchy program: sum the odd numbers below 100.
    let mut asm = Assembler::new();
    let (i, sum, tmp) = (Reg::new(1), Reg::new(2), Reg::new(3));
    asm.li(i, 0);
    asm.li(sum, 0);
    asm.label("loop");
    asm.andi(tmp, i, 1);
    asm.beq_label(tmp, Reg::ZERO, "even"); // data-dependent branch
    asm.add(sum, sum, i);
    asm.label("even");
    asm.addi(i, i, 1);
    asm.slti(tmp, i, 100);
    asm.bne_label(tmp, Reg::ZERO, "loop");
    asm.out(sum);
    asm.halt();
    let program = asm.assemble()?;

    // 2. Run it on the functional VM, capturing the dynamic trace.
    let trace = dee::vm::trace_program(&program, &[], 100_000)?;
    println!("program output: {:?} (expected 2500)", trace.output());
    println!(
        "dynamic instructions: {}, conditional branches: {}, mean branch-path length: {:.2}",
        trace.len(),
        trace.num_cond_branches(),
        trace.mean_path_len()
    );

    // 3. Prepare once (predictor replay + control-dependence analysis),
    //    then simulate every model of the paper at 32 branch paths.
    let prepared = PreparedTrace::new(&program, &trace);
    println!(
        "2-bit counter accuracy on this trace: {:.1}%\n",
        prepared.accuracy() * 100.0
    );
    println!("{:<10} {:>9}", "model", "speedup");
    for model in Model::all_constrained() {
        let outcome = simulate(
            &prepared,
            &SimConfig::new(model, 32).with_p(prepared.accuracy()),
        );
        println!("{:<10} {:>8.2}x", model.name(), outcome.speedup());
    }
    let oracle = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
    println!("{:<10} {:>8.2}x", "Oracle", oracle.speedup());

    // 4. And run the same program on the Levo machine model.
    let report = Levo::new(LevoConfig::default()).run(&program, &[])?;
    assert_eq!(
        report.output,
        trace.output(),
        "Levo computes the same result"
    );
    println!(
        "\nLevo (32x8 IQ, 3 DEE paths): {:.2} IPC over {} cycles",
        report.ipc(),
        report.cycles
    );
    Ok(())
}
