# Dot product with data-dependent saturation — the program from
# `examples/custom_assembly.rs` as a standalone listing, so it can be fed
# to the CLI directly:
#
#   dee analyze examples/asm/dot_product.s --deny warnings
#   dee run     examples/asm/dot_product.s
#
# Inputs live at word addresses 100.. (a[]) and 200.. (b[]); memory is
# zero-filled when run without an image, so the result is then 0.
        li   r1, 0          # i
        li   r2, 64         # n
        li   r3, 0          # acc
        li   r10, 100       # a[] base
        li   r11, 200       # b[] base
loop:   add  r4, r10, r1
        lw   r5, 0(r4)
        add  r4, r11, r1
        lw   r6, 0(r4)
        mul  r7, r5, r6
        add  r3, r3, r7
        slti r8, r3, 10000  # saturate rarely
        bne  r8, r0, next
        li   r3, 10000
next:   addi r1, r1, 1
        blt  r1, r2, loop
        out  r3
        halt
