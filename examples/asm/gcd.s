# Euclid's algorithm by repeated subtraction: gcd(252, 105) = 21.
# A two-branch loop nest with an internal swap path — small enough to
# read, structured enough to exercise the loop detector:
#
#   dee analyze examples/asm/gcd.s --deny warnings
#   dee run     examples/asm/gcd.s
        li   r1, 252
        li   r2, 105
loop:   beq  r2, r0, done
        blt  r1, r2, swap
        sub  r1, r1, r2
        j    loop
swap:   mv   r3, r1
        mv   r1, r2
        mv   r2, r3
        j    loop
done:   out  r1
        halt
