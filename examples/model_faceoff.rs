//! Face off the paper's execution models on one workload: a miniature of
//! Figure 5 with a resource sweep, printed as an ASCII chart.
//!
//! Run with: `cargo run --release --example model_faceoff [workload]`
//! (default espresso at Small scale).

use dee::ilpsim::Model;
use dee::prelude::*;
use dee::workloads::{self, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "espresso".into());
    let workload = workloads::all_workloads(Scale::Small)
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| format!("unknown workload `{name}`"))?;
    let trace = workload.capture_trace()?;
    let prepared = PreparedTrace::new(&workload.program, &trace);
    let p = prepared.accuracy();
    println!(
        "{}: {} dynamic instructions, 2bc accuracy {:.1}%\n",
        workload.name,
        trace.len(),
        p * 100.0
    );

    let resources = [8u32, 16, 32, 64, 128, 256];
    let oracle = simulate(&prepared, &SimConfig::new(Model::Oracle, 0)).speedup();

    // Collect speedups, then chart each model as a bar at E_T = 256.
    println!(
        "{:<10} {}",
        "model",
        resources.map(|e| format!("{e:>7}")).join("")
    );
    let mut at_256 = Vec::new();
    for model in Model::all_constrained() {
        let row: Vec<f64> = resources
            .iter()
            .map(|&et| simulate(&prepared, &SimConfig::new(model, et).with_p(p)).speedup())
            .collect();
        println!(
            "{:<10} {}",
            model.name(),
            row.iter().map(|s| format!("{s:>7.2}")).join("")
        );
        at_256.push((model, *row.last().expect("non-empty sweep")));
    }

    println!("\nspeedup at E_T = 256 (oracle = {oracle:.1}x):");
    let max = at_256.iter().map(|(_, s)| *s).fold(1.0f64, f64::max);
    for (model, speedup) in &at_256 {
        let bar = "#".repeat(((speedup / max) * 50.0).round() as usize);
        println!("{:<10} {:>7.2}x {}", model.name(), speedup, bar);
    }
    Ok(())
}

/// Join an iterator of Strings (tiny helper to avoid pulling a crate).
trait JoinExt {
    fn join(self, sep: &str) -> String;
}

impl<I: Iterator<Item = String>> JoinExt for I {
    fn join(self, sep: &str) -> String {
        self.collect::<Vec<_>>().join(sep)
    }
}
