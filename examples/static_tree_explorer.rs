//! Explore the static DEE tree heuristic (§3.1) across prediction
//! accuracies and resource budgets: prints the tree dimensions, the
//! expected-performance advantage over SP and EE, and a picture of the
//! Figure 2 tree.
//!
//! Run with: `cargo run --example static_tree_explorer [p] [et]`
//! (defaults: the paper's p = 0.90, E_T = 34).

use dee::prelude::*;
use dee::theory::{ee_depth, log_p_not_p, SpecTree, Strategy};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.90);
    let et: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(34);

    let tree = StaticTree::build(TreeParams { p, et });
    println!("static DEE tree for p = {p}, E_T = {et}");
    println!("  log_p(1-p)      = {:.2}", log_p_not_p(p));
    println!("  main-line l     = {}", tree.mainline_len());
    println!("  h_DEE           = {}", tree.h_dee());
    println!("  DEE-region size = {}", tree.dee_region_paths());
    println!("  degenerate SP?  = {}", tree.is_single_path());
    println!("  EE depth at E_T = {}", ee_depth(et));
    println!();

    // Expected performance (sum of covered cumulative probabilities) of
    // the three strategies at this operating point.
    let dee = SpecTree::build(Strategy::Disjoint, p, et);
    let sp = SpecTree::build(Strategy::SinglePath, p, et);
    let ee = SpecTree::build(Strategy::Eager, p, et);
    println!("expected performance P_tot (one resource slot per path):");
    println!(
        "  DEE = {:.3}   SP = {:.3}   EE = {:.3}",
        dee.total_cp(),
        sp.total_cp(),
        ee.total_cp()
    );
    println!();

    // ASCII sketch of the tree: main line down the left, DEE paths
    // hanging off the first h branches.
    println!("tree sketch (ML cp on the left; DEE path extensions right):");
    let ml = tree.mainline_cps();
    for (k, cp) in ml.iter().enumerate().take(tree.h_dee() as usize + 2) {
        let level = k as u32 + 1;
        let mut line = format!("  ML{:<3} {cp:.3}", level);
        if level <= tree.h_dee() {
            let cov = tree.coverage_at_level(level);
            let exts: Vec<String> = (0..cov)
                .map(|j| format!("{:.3}", tree.dee_path_cp(level, j)))
                .collect();
            line.push_str(&format!("  \\-- DEE: {}", exts.join(" ")));
        }
        println!("{line}");
    }
    if tree.mainline_len() > tree.h_dee() + 2 {
        println!(
            "  ...   (main line continues to depth {})",
            tree.mainline_len()
        );
    }
}
